"""Workload definitions (paper Table 1).

A workload pairs a model family with a dataset and carries the tuning
search spaces of §5.1: the family's model hyperparameter, the training
batch size (32-512), the number of training GPUs (1-8), and the inference
parameters (batch size 1-100, CPU cores, CPU frequency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..datasets import Dataset, build_dataset
from ..errors import WorkloadError
from ..hardware import get_device
from ..nn.models import ModelFamily, get_model_family
from ..rng import SeedLike, derive_seed, ensure_seed
from ..space import Categorical, Integer, ParameterSpace

#: Paper §5.1 parameter ranges, shared across workloads.
TRAIN_BATCH_RANGE = (32, 512)
TRAIN_GPU_RANGE = (1, 8)
INFERENCE_BATCH_RANGE = (1, 100)

#: The synthetic datasets are ~25x smaller than the real corpora, so the
#: *configured* training batch size (32-512, fed to the hardware emulator)
#: is divided by this factor for the actual numpy SGD — keeping the
#: steps-per-epoch (and thus the accuracy-vs-batch landscape) in a
#: realistic regime.
BATCH_DOWNSCALE = 8

#: Reference real batch for square-root learning-rate scaling (the
#: standard heuristic keeping convergence comparable across batch sizes).
LR_REFERENCE_BATCH = 16

#: Smallest real batch used for training.
MIN_REAL_BATCH = 4


@dataclass(frozen=True)
class Table1Row:
    """The real-dataset metadata reported in the paper's Table 1."""

    type_label: str
    datasize: str
    train_files: int
    test_files: int


@dataclass(frozen=True)
class Workload:
    """One (model, dataset) tuning workload."""

    workload_id: str  # IC / SR / NLP / OD
    model_name: str
    dataset_name: str
    table1: Table1Row
    #: default learning rate used by training trials
    learning_rate: float = 0.02
    #: synthetic dataset size used by experiments
    samples: int = 2000

    @property
    def family(self) -> ModelFamily:
        return get_model_family(self.model_name)

    @property
    def task(self) -> str:
        return self.family.task

    # -- data ----------------------------------------------------------------
    def load(
        self, seed: SeedLike = None, samples: Optional[int] = None
    ) -> Tuple[Dataset, Dataset]:
        """Build the synthetic dataset and return (train, eval) splits."""
        base_seed = ensure_seed(seed)
        dataset = build_dataset(
            self.dataset_name,
            seed=derive_seed(base_seed, "data", self.workload_id),
            samples=samples or self.samples,
        )
        return dataset.split(0.2, rng=derive_seed(base_seed, "split"))

    # -- search spaces --------------------------------------------------------
    def training_space(self, include_system: bool = True) -> ParameterSpace:
        """Model-server space: model hyperparameter, training batch size
        and (optionally) the training system parameters."""
        space = ParameterSpace(
            [
                self.family.model_parameter,
                Integer(
                    "train_batch_size",
                    TRAIN_BATCH_RANGE[0],
                    TRAIN_BATCH_RANGE[1],
                    log=True,
                    kind="training",
                ),
            ]
        )
        if include_system:
            space.add(
                Integer(
                    "gpus", TRAIN_GPU_RANGE[0], TRAIN_GPU_RANGE[1],
                    kind="system",
                )
            )
        return space

    def inference_space(self, device: str = "armv7") -> ParameterSpace:
        """Inference-server space: inference batch size + device system
        parameters (cores, frequency)."""
        spec = get_device(device)
        return ParameterSpace(
            [
                Integer(
                    "inference_batch_size",
                    INFERENCE_BATCH_RANGE[0],
                    INFERENCE_BATCH_RANGE[1],
                    log=True,
                    kind="inference",
                ),
                Integer("cores", 1, spec.cores, kind="system"),
                Categorical(
                    "frequency_ghz", spec.frequencies_ghz, kind="system"
                ),
            ]
        )

    def effective_training(self, configured_batch: int) -> Tuple[int, float]:
        """Map a configured batch size to (real batch, learning rate).

        The configured value drives the hardware emulator; the returned
        pair drives the actual numpy training (see
        :data:`BATCH_DOWNSCALE` / :data:`LR_REFERENCE_BATCH`).
        """
        if configured_batch < 1:
            raise WorkloadError(
                f"batch size must be >= 1, got {configured_batch}"
            )
        real_batch = max(MIN_REAL_BATCH, configured_batch // BATCH_DOWNSCALE)
        learning_rate = self.learning_rate * (
            real_batch / LR_REFERENCE_BATCH
        ) ** 0.5
        return real_batch, learning_rate

    def model_seed(self, base_seed: int, trial_id: int) -> int:
        """Stable per-trial model-initialisation seed."""
        return derive_seed(base_seed, "model", self.workload_id, trial_id)
