"""Tests for the advisor knowledge base and workload signatures."""

import pytest

from repro.advisor import (
    KnowledgeBase,
    inference_recommendation_of,
    signature_distance,
    signature_for,
    workload_signature,
)
from repro.core.results import InferenceRecommendation, TuningRunResult
from repro.errors import AdvisorError
from repro.storage import TrialDatabase
from repro.telemetry import InferenceMeasurement
from repro.workloads import WORKLOADS, get_workload


def make_result(accuracy=0.8, with_inference=True):
    inference = None
    if with_inference:
        inference = InferenceRecommendation(
            configuration={"inference_batch_size": 16, "cores": 2,
                           "frequency_ghz": 1.2},
            measurement=InferenceMeasurement(
                batch_latency_s=0.5,
                throughput_sps=32.0,
                energy_per_sample_j=0.1,
                power_w=3.2,
                working_set_bytes=1 << 20,
                device="armv7",
                batch_size=16,
                cores=2,
            ),
            device="armv7",
            objective="inference-energy",
            tuning_runtime_s=12.0,
            tuning_energy_j=40.0,
            cache_hit=False,
        )
    return TuningRunResult(
        system="edgetune",
        workload_id="IC",
        best_configuration={"num_layers": 18, "train_batch_size": 64},
        best_accuracy=accuracy,
        best_score=1.25,
        tuning_runtime_s=900.0,
        tuning_energy_j=5000.0,
        inference=inference,
    )


def index(kb, workload="IC", device="armv7", objective="runtime",
          target=0.8, system="edgetune", accuracy=0.8, **kwargs):
    return kb.index_result(
        workload=workload, device=device, objective=objective,
        target_accuracy=target, system=system, session_id="s-1",
        result=make_result(accuracy=accuracy, **kwargs),
    )


class TestSignatures:
    def test_signature_contents(self):
        signature = workload_signature(get_workload("IC"))
        assert signature["workload"] == "IC"
        assert signature["task"]
        assert signature["train_files"] > 0

    def test_signature_for_accepts_id_and_object(self):
        assert signature_for("SR") == workload_signature(get_workload("SR"))

    def test_unknown_workload_rejected(self):
        with pytest.raises(AdvisorError):
            signature_for("nope")

    def test_distance_zero_for_same_workload(self):
        a = signature_for("IC")
        assert signature_distance(a, dict(a)) == 0.0

    def test_distance_symmetric_and_positive_across_workloads(self):
        ids = sorted(WORKLOADS)
        for first in ids:
            for second in ids:
                if first == second:
                    continue
                a, b = signature_for(first), signature_for(second)
                assert signature_distance(a, b) > 0.0
                assert signature_distance(a, b) == pytest.approx(
                    signature_distance(b, a)
                )


class TestIndexing:
    def test_index_result_roundtrip(self):
        kb = KnowledgeBase(TrialDatabase())
        index(kb)
        assert kb.size() == 1
        advice = kb.query("IC", "armv7", "runtime", target_accuracy=0.8)
        assert advice.exact
        assert advice.match_cost == 0.0
        rec = advice.recommendation
        assert rec.best_configuration["num_layers"] == 18
        assert rec.inference["configuration"]["cores"] == 2

    def test_reindex_replaces_not_duplicates(self):
        kb = KnowledgeBase(TrialDatabase())
        index(kb, accuracy=0.7)
        index(kb, accuracy=0.9)
        assert kb.size() == 1
        advice = kb.query("IC", "armv7", "runtime", target_accuracy=0.8)
        assert advice.recommendation.best_accuracy == 0.9

    def test_distinct_targets_are_distinct_rows(self):
        kb = KnowledgeBase(TrialDatabase())
        index(kb, target=0.7)
        index(kb, target=0.9)
        index(kb, target=None)
        assert kb.size() == 3

    def test_result_without_inference(self):
        kb = KnowledgeBase(TrialDatabase())
        index(kb, with_inference=False)
        advice = kb.query("IC", "armv7", "runtime", target_accuracy=0.8)
        assert advice.recommendation.inference is None


class TestQuery:
    def test_empty_kb_raises(self):
        kb = KnowledgeBase(TrialDatabase())
        with pytest.raises(AdvisorError):
            kb.query("IC", "armv7", "runtime")

    def test_exact_beats_nearest(self):
        kb = KnowledgeBase(TrialDatabase())
        index(kb, device="armv7")
        index(kb, device="xeon")
        advice = kb.query("IC", "xeon", "runtime", target_accuracy=0.8)
        assert advice.exact
        assert advice.recommendation.device == "xeon"

    def test_nearest_workload_fallback(self):
        kb = KnowledgeBase(TrialDatabase())
        index(kb, workload="IC")
        advice = kb.query("SR", "armv7", "runtime", target_accuracy=0.8)
        assert not advice.exact
        assert advice.match_cost > 0.0
        assert advice.recommendation.workload == "IC"

    def test_nearest_prefers_matching_objective(self):
        kb = KnowledgeBase(TrialDatabase())
        index(kb, workload="IC", objective="runtime")
        index(kb, workload="IC", objective="energy")
        advice = kb.query("SR", "armv7", "energy", target_accuracy=0.8)
        assert advice.recommendation.objective == "energy"

    def test_exact_required_raises_on_miss(self):
        kb = KnowledgeBase(TrialDatabase())
        index(kb, workload="IC")
        with pytest.raises(AdvisorError):
            kb.query("SR", "armv7", "runtime", allow_nearest=False)

    def test_system_filter(self):
        kb = KnowledgeBase(TrialDatabase())
        index(kb, system="edgetune")
        advice = kb.query("IC", "armv7", "runtime", target_accuracy=0.8,
                          system="edgetune")
        assert advice.exact
        with pytest.raises(AdvisorError):
            kb.query("SR", "armv7", "runtime", system="tune")

    def test_advice_to_dict_is_json_safe(self):
        import json

        kb = KnowledgeBase(TrialDatabase())
        index(kb)
        advice = kb.query("IC", "armv7", "runtime", target_accuracy=0.8)
        payload = json.loads(json.dumps(advice.to_dict()))
        assert payload["workload"] == "IC"
        assert payload["exact"] is True


class TestInferenceRecommendationOf:
    def test_materializes_stored_payload(self):
        kb = KnowledgeBase(TrialDatabase())
        index(kb)
        advice = kb.query("IC", "armv7", "runtime", target_accuracy=0.8)
        rec = inference_recommendation_of(advice.recommendation.inference)
        assert isinstance(rec, InferenceRecommendation)
        assert rec.configuration["inference_batch_size"] == 16
        assert rec.measurement.throughput_sps == 32.0
        assert rec.device == "armv7"


class TestIndexSessions:
    def test_bulk_index_from_finished_sessions(self):
        from repro.service import SessionSpec, SessionStore
        from repro.service.sessions import S_DONE

        database = TrialDatabase()
        store = SessionStore(database)
        spec = SessionSpec(system="edgetune", workload="IC", device="armv7",
                           target_accuracy=0.8)
        session_id = store.create(spec)
        store.finish(session_id, {
            "best_configuration": {"num_layers": 18},
            "best_accuracy": 0.82,
            "best_score": 1.0,
            "num_trials": 9,
            "tuning_runtime_s": 100.0,
            "tuning_energy_j": 200.0,
            "inference": None,
        })
        kb = KnowledgeBase(database)
        assert kb.index_sessions() == 1
        advice = kb.query("IC", "armv7", "runtime", target_accuracy=0.8)
        assert advice.recommendation.session_id == session_id
        assert advice.recommendation.num_trials == 9
