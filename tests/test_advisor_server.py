"""Tests for the advisor TCP server, client, cache and rate limiter."""

import json
import threading
import time

import pytest

from repro.advisor import (
    AdvisorClient,
    AdvisorServer,
    KnowledgeBase,
    LRUCache,
    TokenBucket,
    inference_recommendation_of,
)
from repro.core.results import InferenceRecommendation
from repro.errors import AdvisorError
from repro.service import SessionCoordinator, SessionSpec, SessionStore
from repro.storage import TrialDatabase


class TestLRUCache:
    def test_capacity_validated(self):
        with pytest.raises(AdvisorError):
            LRUCache(0)

    def test_get_put(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_len_and_clear(self):
        cache = LRUCache(8)
        for key in range(5):
            cache.put(key, key)
        assert len(cache) == 5
        cache.clear()
        assert len(cache) == 0


class TestTokenBucket:
    def test_rate_validated(self):
        with pytest.raises(AdvisorError):
            TokenBucket(0.0)

    def test_burst_then_refusal(self):
        bucket = TokenBucket(rate=1.0, burst=3)
        now = 100.0
        assert all(bucket.allow("c", now=now) for _ in range(3))
        assert not bucket.allow("c", now=now)

    def test_refills_over_time(self):
        bucket = TokenBucket(rate=2.0, burst=2)
        assert bucket.allow("c", now=0.0)
        assert bucket.allow("c", now=0.0)
        assert not bucket.allow("c", now=0.0)
        assert bucket.allow("c", now=1.0)  # 2 tokens/s refill

    def test_clients_are_independent(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        assert bucket.allow("a", now=0.0)
        assert bucket.allow("b", now=0.0)
        assert not bucket.allow("a", now=0.0)


def seed_kb(database, **overrides):
    from tests.test_advisor_kb import index

    index(KnowledgeBase(database), **overrides)


class TestHandleLine:
    """The in-process request seam (no sockets)."""

    def make(self, **kwargs):
        database = TrialDatabase()
        seed_kb(database)
        return AdvisorServer(database, port=0, **kwargs)

    def ask_line(self, target=0.8):
        return json.dumps({
            "op": "ask", "workload": "IC", "device": "armv7",
            "objective": "runtime", "target_accuracy": target,
        }).encode()

    def test_ping(self):
        server = self.make()
        try:
            response = server.handle_line(b'{"op": "ping"}', "c")
            assert response == {"ok": True, "pong": True, "draining": False}
        finally:
            server.server_close()

    def test_bad_json_is_an_error_response(self):
        server = self.make()
        try:
            response = server.handle_line(b"{nope", "c")
            assert not response["ok"]
            assert "bad request" in response["error"]
        finally:
            server.server_close()

    def test_unknown_op(self):
        server = self.make()
        try:
            response = server.handle_line(b'{"op": "explode"}', "c")
            assert not response["ok"]
        finally:
            server.server_close()

    def test_ask_cache_miss_then_hit(self):
        server = self.make()
        try:
            first = server.handle_line(self.ask_line(), "c")
            second = server.handle_line(self.ask_line(), "c")
            assert first["ok"] and second["ok"]
            assert first["cache_hit"] is False
            assert second["cache_hit"] is True
            assert first["advice"] == second["advice"]
            stats = server.meters.snapshot()
            assert stats["advisor.cache_hits"] == 1
            assert stats["advisor.cache_misses"] == 1
        finally:
            server.server_close()

    def test_distinct_questions_are_distinct_cache_entries(self):
        server = self.make()
        try:
            server.handle_line(self.ask_line(0.8), "c")
            response = server.handle_line(self.ask_line(0.9), "c")
            assert response["cache_hit"] is False
        finally:
            server.server_close()

    def test_rate_limit(self):
        server = self.make(rate_limit=1.0, burst=2)
        try:
            responses = [
                server.handle_line(self.ask_line(), "client-a")
                for _ in range(4)
            ]
            refused = [r for r in responses if not r.get("ok")]
            assert refused
            assert all(r["error"] == "rate_limited" for r in refused)
        finally:
            server.server_close()

    def test_index_op_refreshes_and_clears_cache(self):
        server = self.make()
        try:
            server.handle_line(self.ask_line(), "c")
            response = server.handle_line(b'{"op": "index"}', "c")
            assert response["ok"]
            assert len(server.cache) == 0
        finally:
            server.server_close()

    def test_stats_reports_latency_percentiles(self):
        server = self.make()
        try:
            server.handle_line(self.ask_line(), "c")
            response = server.handle_line(b'{"op": "stats"}', "c")
            latency = response["stats"]["advisor.latency_s"]
            assert {"p50", "p90", "p99"} <= set(latency)
            assert response["knowledge_base_size"] == 1
        finally:
            server.server_close()


@pytest.fixture
def live_server():
    database = TrialDatabase()
    seed_kb(database)
    server = AdvisorServer(database, port=0)
    thread = threading.Thread(target=server.serve_until_drained, daemon=True)
    thread.start()
    yield server
    server.initiate_drain()
    thread.join(timeout=5.0)
    assert not thread.is_alive()


class TestLiveServer:
    def test_ping_over_socket(self, live_server):
        with AdvisorClient(live_server.host, live_server.port) as client:
            assert client.ping()["pong"] is True

    def test_ask_and_cache_hit_over_socket(self, live_server):
        with AdvisorClient(live_server.host, live_server.port) as client:
            first = client.ask("IC", target_accuracy=0.8)
            second = client.ask("IC", target_accuracy=0.8)
        assert first["ok"] and second["ok"]
        assert first["cache_hit"] is False
        assert second["cache_hit"] is True

    def test_many_requests_one_connection(self, live_server):
        with AdvisorClient(live_server.host, live_server.port) as client:
            for _ in range(50):
                assert client.ask("IC", target_accuracy=0.8)["ok"]
        stats = live_server.meters.snapshot()
        assert stats["advisor.requests"] >= 50
        assert stats["advisor.connections"] == 1

    def test_concurrent_clients(self, live_server):
        errors = []

        def hammer():
            try:
                with AdvisorClient(live_server.host,
                                   live_server.port) as client:
                    for _ in range(20):
                        assert client.ask("IC")["ok"]
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not errors

    def test_drain_refuses_late_requests(self, live_server):
        with AdvisorClient(live_server.host, live_server.port) as client:
            assert client.ping()["pong"]
            live_server.initiate_drain()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                try:
                    client.ping()
                    time.sleep(0.05)
                except AdvisorError:
                    break
            else:  # pragma: no cover
                pytest.fail("draining server kept answering")


class TestEndToEnd:
    """ISSUE acceptance: session -> index -> ask, with a cache hit."""

    def test_session_to_recommendation(self):
        database = TrialDatabase()
        spec = SessionSpec(workload="IC", device="armv7", seed=7,
                           samples=240, max_trials=6, target_accuracy=None)
        session_id = SessionStore(database).create(spec)
        result = SessionCoordinator(database, session_id, workers=0).run()
        assert result.inference is not None

        # The coordinator indexes on finalize — no explicit `advisor index`
        # needed; a bulk re-index is idempotent on top of it.
        kb = KnowledgeBase(database)
        assert kb.size() == 1
        assert kb.index_sessions() == 1
        assert kb.size() == 1

        server = AdvisorServer(database, port=0)
        thread = threading.Thread(
            target=server.serve_until_drained, daemon=True
        )
        thread.start()
        try:
            with AdvisorClient(server.host, server.port) as client:
                first = client.ask("IC", device="armv7",
                                   objective="runtime")
                second = client.ask("IC", device="armv7",
                                    objective="runtime")
        finally:
            server.initiate_drain()
            thread.join(timeout=5.0)

        assert first["ok"]
        assert second["cache_hit"] is True
        advice = first["advice"]
        assert advice["session_id"] == session_id
        assert advice["best_configuration"] == result.best_configuration

        # The stored inference block materializes back into the session's
        # InferenceRecommendation.
        rec = inference_recommendation_of(advice["inference"])
        assert isinstance(rec, InferenceRecommendation)
        assert rec.configuration == result.inference.configuration
        assert rec.measurement.throughput_sps == pytest.approx(
            result.inference.measurement.throughput_sps
        )
