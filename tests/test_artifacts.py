"""Trial artifact cache: exact memoization + cross-rung warm-resume.

Covers the cache's two contracts:

* **bit-identity** — a cache hit returns the stored
  :class:`TrialEvaluation` and model byte-for-byte equal to a fresh
  evaluation, for any worker count, with or without fault injection;
* **determinism** — warm-resumed sessions are bit-identical across runs
  at a fixed seed, and with ``--reuse-checkpoints`` off a session is
  bit-identical whether or not a store is attached.
"""

import os
import pickle
import signal
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EdgeTune, faults
from repro.artifacts import (
    ArtifactStore,
    artifact_checksum,
    backend_fingerprint,
    pack_velocity,
    trial_key,
    unpack_velocity,
)
from repro.budgets import MultiBudget
from repro.core import ModelTuningServer
from repro.core.model_server import TrialTask, evaluate_trial
from repro.errors import ConfigurationError
from repro.nn.optimizers import SGD
from repro.nn.serialize import state_dict
from repro.rng import make_rng
from repro.search.successive_halving import SuccessiveHalvingScheduler
from repro.search.random_search import RandomSearcher
from repro.storage import TrialDatabase
from repro.workloads import get_workload

SAMPLES = 160


def make_task(trial_id=0, seed=11, epochs=1, data_fraction=0.5,
              config_seed=3, **overrides):
    workload = get_workload("IC")
    space = workload.training_space(include_system=True)
    values = space.sample(make_rng(config_seed)).to_dict()
    fields = dict(
        trial_id=trial_id,
        values={k: int(v) for k, v in values.items()},
        fidelity=1,
        bracket=0,
        rung=0,
        epochs=epochs,
        data_fraction=data_fraction,
        workload_id="IC",
        seed=seed,
        samples=SAMPLES,
    )
    fields.update(overrides)
    return TrialTask(**fields)


def model_bytes(model):
    """Canonical byte serialization of a model's weights."""
    return pickle.dumps(
        {name: value for name, value in sorted(state_dict(model).items())}
    )


def tune_result(reuse, db=None, seed=7, max_trials=8):
    database = TrialDatabase(db) if db else None
    tuner = EdgeTune(workload="IC", seed=seed, samples=200,
                     max_trials=max_trials, reuse_checkpoints=reuse,
                     database=database)
    try:
        return tuner.tune()
    finally:
        if database is not None:
            database.close()


def result_signature(result):
    return (
        result.best_accuracy,
        result.best_score,
        result.best_configuration,
        [(r.trial_id, r.accuracy, r.score, r.epochs, r.data_fraction)
         for r in result.trials],
        result.tuning_runtime_s,
        result.tuning_energy_j,
    )


class TestTrialKey:
    def test_stable_for_equal_tasks(self):
        fp = backend_fingerprint()
        assert trial_key(make_task(), fp) == trial_key(make_task(), fp)

    @pytest.mark.parametrize("change", [
        dict(trial_id=1),
        dict(seed=12),
        dict(epochs=2),
        dict(data_fraction=0.25),
        dict(samples=SAMPLES + 1),
        dict(config_seed=4),
        dict(reuse=True),
        dict(reuse=True, parent_key="abc", start_epoch=1),
    ])
    def test_sensitive_to_trial_content(self, change):
        fp = backend_fingerprint()
        assert trial_key(make_task(), fp) != trial_key(
            make_task(**change), fp
        )

    def test_ignores_scheduler_position(self):
        """bracket/rung/fidelity locate a trial, they don't change bits."""
        fp = backend_fingerprint()
        assert trial_key(make_task(), fp) == trial_key(
            make_task(fidelity=4, bracket=2, rung=3), fp
        )

    def test_fault_plan_changes_fingerprint(self):
        clean = backend_fingerprint()
        faults.configure("seed=13;trainer.nan=0.5")
        try:
            assert backend_fingerprint() != clean
        finally:
            faults.configure(None)


class TestResumeStatePacking:
    def test_round_trip(self):
        rng = make_rng(5)
        velocity = [rng.normal(size=(4, 3)), rng.normal(size=(7,))]
        blob = pack_velocity(velocity)
        restored = unpack_velocity(blob)
        assert len(restored) == 2
        for got, want in zip(restored, velocity):
            np.testing.assert_array_equal(got, want)

    def test_empty_velocity(self):
        assert unpack_velocity(pack_velocity([])) == []


class TestSGDState:
    def _sgd(self):
        from repro.nn.module import ParamTensor

        params = [ParamTensor("w", np.zeros((3, 2))),
                  ParamTensor("b", np.zeros(2))]
        return SGD(params, lr=0.1, momentum=0.9)

    def test_round_trip(self):
        a, b = self._sgd(), self._sgd()
        a._velocity[0][...] = 1.5
        a._velocity[1][...] = -2.0
        b.load_state_dict(a.state_dict())
        for got, want in zip(b._velocity, a._velocity):
            np.testing.assert_array_equal(got, want)

    def test_state_dict_is_a_copy(self):
        sgd = self._sgd()
        snapshot = sgd.state_dict()
        sgd._velocity[0][...] = 9.0
        assert snapshot["velocity"][0].max() == 0.0

    def test_rejects_wrong_length(self):
        with pytest.raises(ConfigurationError):
            self._sgd().load_state_dict({"velocity": [np.zeros((3, 2))]})

    def test_rejects_wrong_shape(self):
        with pytest.raises(ConfigurationError):
            self._sgd().load_state_dict(
                {"velocity": [np.zeros((2, 3)), np.zeros(2)]}
            )


class TestArtifactStore:
    def test_put_get_round_trip_memory(self):
        store = ArtifactStore(TrialDatabase())
        store.put("k1", b"payload", workload="IC", trial_id=0)
        assert store.get("k1") == b"payload"
        assert store.get("missing") is None
        assert store.session_hits == 1
        assert store.session_misses == 1

    def test_put_is_idempotent(self):
        store = ArtifactStore(TrialDatabase())
        store.put("k1", b"payload")
        store.put("k1", b"other")  # first writer wins
        assert store.get("k1") == b"payload"
        assert store.stats()["entries"] == 1

    def test_file_backed_sidecar(self, tmp_path):
        db = TrialDatabase(str(tmp_path / "t.sqlite"))
        store = ArtifactStore(db)
        store.put("k1", b"payload")
        assert os.path.isfile(
            os.path.join(store.blob_dir, "k1.bin")
        )
        assert store.get("k1") == b"payload"
        db.close()

    def test_missing_sidecar_is_a_miss_and_drops_row(self, tmp_path):
        db = TrialDatabase(str(tmp_path / "t.sqlite"))
        store = ArtifactStore(db)
        store.put("k1", b"payload")
        os.unlink(os.path.join(store.blob_dir, "k1.bin"))
        assert store.get("k1") is None
        assert store.stats()["entries"] == 0
        db.close()

    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "t.sqlite")
        db = TrialDatabase(path)
        ArtifactStore(db).put("k1", b"payload")
        db.close()
        reopened = TrialDatabase(path)
        assert ArtifactStore(reopened).get("k1") == b"payload"
        reopened.close()

    def test_stats_accounting(self):
        store = ArtifactStore(TrialDatabase())
        store.put("k1", b"aaaa")
        store.put("k2", b"bb")
        store.get("k1")
        store.get("k1")
        stats = store.stats()
        assert stats == {"entries": 2, "bytes": 6, "hits": 2, "misses": 2,
                         "quarantined": 0}

    def test_gc_age(self):
        store = ArtifactStore(TrialDatabase())
        store.put("old", b"x" * 10)
        store.put("new", b"y")
        store.database.execute(
            "UPDATE artifacts SET created_at = created_at - 1000 "
            "WHERE key = 'old'"
        )
        pruned = store.gc(max_age_s=500)
        assert pruned["artifacts_deleted"] == 1
        assert pruned["bytes_freed"] == 10
        assert store.get("old") is None
        assert store.get("new") == b"y"

    def test_gc_recent_hit_keeps_entry(self):
        store = ArtifactStore(TrialDatabase())
        store.put("hot", b"x")
        store.database.execute(
            "UPDATE artifacts SET created_at = created_at - 1000"
        )
        store.get("hot")  # refreshes last_hit_at
        assert store.gc(max_age_s=500)["artifacts_deleted"] == 0

    def test_gc_size_cap_evicts_lru(self):
        store = ArtifactStore(TrialDatabase())
        store.put("a", b"x" * 60)
        store.put("b", b"y" * 60)
        store.database.execute(
            "UPDATE artifacts SET created_at = created_at - 10 "
            "WHERE key = 'a'"
        )
        store.get("b")
        pruned = store.gc(max_bytes=100)
        assert pruned["artifacts_deleted"] == 1
        assert store.get("a") is None
        assert store.get("b") is not None

    def test_gc_removes_orphans(self, tmp_path):
        db = TrialDatabase(str(tmp_path / "t.sqlite"))
        store = ArtifactStore(db)
        store.put("k1", b"payload")
        os.makedirs(store.blob_dir, exist_ok=True)
        for name in ("dead.bin", "k1.tmp-stale"):
            with open(os.path.join(store.blob_dir, name), "wb") as fh:
                fh.write(b"junk")
        pruned = store.gc()
        assert pruned["orphans_removed"] == 2
        assert store.get("k1") == b"payload"
        db.close()


class TestExactMemoization:
    def _fresh_and_cached(self, store, **task_kwargs):
        task = make_task(**task_kwargs)
        fresh_eval, fresh_model = evaluate_trial(task, artifacts=store)
        cached_eval, cached_model = evaluate_trial(task, artifacts=store)
        return fresh_eval, fresh_model, cached_eval, cached_model

    def test_hit_is_bit_identical(self):
        store = ArtifactStore(TrialDatabase())
        fe, fm, ce, cm = self._fresh_and_cached(store)
        assert pickle.dumps(ce) == pickle.dumps(fe)
        assert model_bytes(cm) == model_bytes(fm)
        assert store.session_hits == 1
        assert store.session_misses == 1

    def test_hit_matches_uncached_run(self):
        """The stored evaluation equals what no cache at all produces."""
        store = ArtifactStore(TrialDatabase())
        task = make_task()
        evaluate_trial(task, artifacts=store)
        cached_eval, cached_model = evaluate_trial(task, artifacts=store)
        bare_eval, bare_model = evaluate_trial(task, artifacts=None)
        assert pickle.dumps(cached_eval) == pickle.dumps(bare_eval)
        assert model_bytes(cached_model) == model_bytes(bare_model)

    @settings(max_examples=4, deadline=None)
    @given(config_seed=st.integers(min_value=0, max_value=40),
           trial_id=st.integers(min_value=0, max_value=6),
           epochs=st.integers(min_value=1, max_value=2))
    def test_hit_bit_identical_property(self, config_seed, trial_id,
                                        epochs):
        store = ArtifactStore(TrialDatabase())
        fe, fm, ce, cm = self._fresh_and_cached(
            store, config_seed=config_seed, trial_id=trial_id,
            epochs=epochs,
        )
        assert pickle.dumps(ce) == pickle.dumps(fe)
        assert model_bytes(cm) == model_bytes(fm)

    def test_hit_bit_identical_under_faults(self):
        """A trainer.nan fault is part of the stored result — and the
        fault plan is part of the key, so clean/faulty never mix."""
        clean_store = ArtifactStore(TrialDatabase())
        task = make_task()
        clean_eval, _ = evaluate_trial(task, artifacts=clean_store)
        faults.configure("seed=13;trainer.nan=1.0")
        try:
            store = ArtifactStore(TrialDatabase())
            fresh_eval, _ = evaluate_trial(task, artifacts=store)
            cached_eval, _ = evaluate_trial(task, artifacts=store)
            assert fresh_eval.diverged
            assert pickle.dumps(cached_eval) == pickle.dumps(fresh_eval)
            faulty_key = trial_key(task)
        finally:
            faults.configure(None)
        assert trial_key(task) != faulty_key
        assert not clean_eval.diverged

    def test_file_store_shared_across_instances(self, tmp_path):
        """Two store instances over one file (= two worker processes)
        share entries; the second gets a hit for the first's miss."""
        path = str(tmp_path / "t.sqlite")
        db_a, db_b = TrialDatabase(path), TrialDatabase(path)
        task = make_task()
        eval_a, model_a = evaluate_trial(
            task, artifacts=ArtifactStore(db_a)
        )
        store_b = ArtifactStore(db_b)
        eval_b, model_b = evaluate_trial(task, artifacts=store_b)
        assert store_b.session_hits == 1
        assert pickle.dumps(eval_b) == pickle.dumps(eval_a)
        assert model_bytes(model_b) == model_bytes(model_a)
        db_a.close()
        db_b.close()


class TestWarmResume:
    def test_sha_promotion_carries_lineage(self):
        workload = get_workload("IC")
        space = workload.training_space(include_system=True)
        scheduler = SuccessiveHalvingScheduler(
            space, RandomSearcher(space, seed=5), num_configs=4,
            eta=2, min_fidelity=1, max_fidelity=4, seed=5,
        )
        first_rung = []
        while True:
            trial = scheduler.next_trial()
            if trial is None:
                break
            assert trial.parent_id is None
            first_rung.append(trial)
        from repro.search.base import TrialReport

        for rank, trial in enumerate(first_rung):
            scheduler.report(TrialReport(trial=trial, score=float(rank)))
        promoted = scheduler.next_trial()
        assert promoted.parent_id == first_rung[0].trial_id
        assert promoted.parent_fidelity == first_rung[0].fidelity
        assert promoted.configuration == first_rung[0].configuration

    def test_warm_child_trains_incrementally(self):
        """A resumed child is charged only the incremental epochs."""
        store = ArtifactStore(TrialDatabase())
        parent = make_task(trial_id=0, epochs=1, data_fraction=0.25,
                           reuse=True)
        evaluate_trial(parent, artifacts=store)
        parent_key = trial_key(parent)
        child_cold = make_task(trial_id=0, epochs=2, data_fraction=0.5,
                               reuse=True)
        child_warm = make_task(trial_id=0, epochs=2, data_fraction=0.5,
                               reuse=True, parent_key=parent_key,
                               start_epoch=1)
        cold_eval, _ = evaluate_trial(child_cold, artifacts=store)
        warm_eval, _ = evaluate_trial(child_warm, artifacts=store)
        assert 0 < warm_eval.samples_seen < cold_eval.samples_seen
        assert warm_eval.train_total_flops < cold_eval.train_total_flops

    def test_missing_parent_falls_back_to_cold(self):
        """A gc'd parent degrades to a cold run keyed without lineage —
        bit-identical to the cold child."""
        store = ArtifactStore(TrialDatabase())
        child_cold = make_task(trial_id=0, epochs=2, data_fraction=0.5,
                               reuse=True)
        cold_eval, cold_model = evaluate_trial(
            child_cold, artifacts=store
        )
        orphan = make_task(trial_id=0, epochs=2, data_fraction=0.5,
                           reuse=True, parent_key="deadbeef" * 5,
                           start_epoch=1)
        fallback_eval, fallback_model = evaluate_trial(
            orphan, artifacts=store
        )
        assert pickle.dumps(fallback_eval) == pickle.dumps(cold_eval)
        assert model_bytes(fallback_model) == model_bytes(cold_model)

    def test_warm_session_deterministic(self):
        a = tune_result(reuse=True)
        b = tune_result(reuse=True)
        assert result_signature(a) == result_signature(b)

    def test_warm_session_cheaper_than_cold(self):
        cold = tune_result(reuse=False, max_trials=None)
        warm = tune_result(reuse=True, max_trials=None)
        assert warm.tuning_runtime_s < cold.tuning_runtime_s
        assert warm.tuning_energy_j < cold.tuning_energy_j

    def test_flag_off_matches_storeless_run(self, tmp_path):
        """Attaching a store without --reuse-checkpoints must not change
        a single bit of the session result."""
        bare = tune_result(reuse=False)
        stored = tune_result(reuse=False,
                             db=str(tmp_path / "t.sqlite"))
        assert result_signature(stored) == result_signature(bare)

    def test_warm_resume_state_chains_through_session(self):
        """Under reuse, every trial stores resume state so the next rung
        can chain from it, and promoted tasks carry their parent key."""
        database = TrialDatabase()
        server = ModelTuningServer(
            workload=get_workload("IC"),
            algorithm="sha",
            budget=MultiBudget(min_epochs=1, max_epochs=4,
                               min_fraction=0.25),
            database=database,
            seed=11,
            samples=SAMPLES,
            reuse_checkpoints=True,
        )
        state = server.prepare()
        warm_tasks = []
        while True:
            trial = server._next_trial(state)
            if trial is None:
                break
            task = server.make_task(trial, state)
            if task.parent_key is not None:
                warm_tasks.append(task)
            evaluation, model = evaluate_trial(
                task, state.train_set, state.eval_set,
                workload=server.workload, artifacts=server.artifacts,
            )
            server.integrate(state, trial, evaluation, model=model)
        assert warm_tasks, "no promotion carried a parent key"
        assert all(t.start_epoch > 0 for t in warm_tasks)
        assert len(state.artifact_keys) == len(state.records)

    def test_gc_converges_after_forced_cold_fallback(self, tmp_path):
        """S3: a gc'd/damaged parent forces the child onto the re-keyed
        cold path; afterwards the store must reach a fixed point — a
        second ``gc`` pass deletes nothing and ``scrub`` finds the store
        clean (no perpetual orphan left behind by the fallback)."""
        database = TrialDatabase(str(tmp_path / "artifacts.sqlite"))
        store = ArtifactStore(database)
        parent = make_task(trial_id=0, epochs=1, data_fraction=0.25,
                           reuse=True)
        evaluate_trial(parent, artifacts=store)
        parent_key = trial_key(parent)
        # The parent's sidecar vanishes out from under the row (disk
        # cleanup, partial restore, ...).
        blob_path = store._blob_path(parent_key)
        assert os.path.exists(blob_path)
        os.remove(blob_path)
        # The child's warm lookup misses, drops the dangling row, and
        # falls back to the cold (lineage-free) evaluation, which is
        # bit-identical to a child that never had a parent.
        child = make_task(trial_id=0, epochs=2, data_fraction=0.5,
                          reuse=True, parent_key=parent_key, start_epoch=1)
        cold = make_task(trial_id=0, epochs=2, data_fraction=0.5,
                         reuse=True)
        fallback_eval, _ = evaluate_trial(child, artifacts=store)
        cold_eval, _ = evaluate_trial(cold, artifacts=store)
        assert pickle.dumps(fallback_eval) == pickle.dumps(cold_eval)
        # gc converges: whatever the first pass collects, the second
        # pass must find nothing left to do.
        store.gc()
        second = store.gc()
        assert second["artifacts_deleted"] == 0
        assert second["orphans_removed"] == 0
        assert second["bytes_freed"] == 0
        report = store.scrub(repair=True)
        assert report["quarantined"] == 0
        assert report["missing"] == 0
        assert report["orphans_removed"] == 0
        # And the surviving entries still verify end to end.
        assert report["verified"] == report["scanned"] > 0
        database.close()


class TestNestedSubsets:
    def test_prefix_nesting_with_order_seed(self):
        from repro.datasets.registry import build_dataset

        dataset = build_dataset("cifar10", samples=200, seed=9)
        assert dataset.order_seed is not None
        small = dataset.subset(0.25)
        large = dataset.subset(0.5)
        np.testing.assert_array_equal(
            small.features, large.features[: len(small)]
        )
        np.testing.assert_array_equal(
            small.targets, large.targets[: len(small)]
        )

    def test_workload_split_carries_order_seed(self):
        train, evalset = get_workload("IC").load(seed=11, samples=SAMPLES)
        assert train.order_seed is not None
        assert evalset.order_seed is not None
        assert train.order_seed != evalset.order_seed

    def test_explicit_rng_bypasses_canonical_order(self):
        from repro.datasets.registry import build_dataset

        dataset = build_dataset("cifar10", samples=200, seed=9)
        a = dataset.subset(0.25, rng=123)
        b = dataset.subset(0.25, rng=123)
        np.testing.assert_array_equal(a.features, b.features)


class TestDatasetMemo:
    def test_load_task_datasets_memoized(self):
        from repro.core import model_server

        model_server._DATASET_CACHE.clear()
        task = make_task()
        first = model_server.load_task_datasets(task)
        second = model_server.load_task_datasets(task)
        assert first[0] is second[0] and first[1] is second[1]

    def test_memo_capped(self):
        from repro.core import model_server

        model_server._DATASET_CACHE.clear()
        for seed in range(model_server._DATASET_CACHE_MAX + 2):
            model_server.load_task_datasets(
                make_task(seed=seed, samples=64)
            )
        assert (len(model_server._DATASET_CACHE)
                == model_server._DATASET_CACHE_MAX)


class TestCrashSurvival:
    def test_artifacts_survive_sigkill(self, tmp_path):
        """Artifacts published before a kill -9 are all replayable after:
        the second pass over the same tasks is 100% cache hits and
        bit-identical to a fresh evaluation."""
        db_path = str(tmp_path / "t.sqlite")
        script = f"""
import os, signal, sys
sys.path.insert(0, {os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")!r})
from test_artifacts import make_task
from repro.artifacts import ArtifactStore
from repro.core.model_server import evaluate_trial
from repro.storage import TrialDatabase

store = ArtifactStore(TrialDatabase({db_path!r}))
for trial_id in range(3):
    evaluate_trial(make_task(trial_id=trial_id), artifacts=store)
os.kill(os.getpid(), signal.SIGKILL)
"""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.join(os.path.dirname(os.path.dirname(
                    os.path.abspath(__file__))), "src"),
                os.path.dirname(os.path.abspath(__file__)),
                env.get("PYTHONPATH", ""),
            ) if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL
        database = TrialDatabase(db_path)
        store = ArtifactStore(database)
        assert store.stats()["entries"] == 3
        for trial_id in range(3):
            task = make_task(trial_id=trial_id)
            cached_eval, cached_model = evaluate_trial(
                task, artifacts=store
            )
            fresh_eval, fresh_model = evaluate_trial(task, artifacts=None)
            assert pickle.dumps(cached_eval) == pickle.dumps(fresh_eval)
            assert model_bytes(cached_model) == model_bytes(fresh_model)
        assert store.session_hits == 3
        assert store.session_misses == 0
        database.close()


class TestIntegrity:
    """End-to-end artifact integrity: every blob is checksummed on
    ``put`` and verified on every read; a mismatch quarantines the blob
    and degrades to a deterministic cold re-run — never a wrong result.
    ``scrub`` sweeps the whole store the same way."""

    def _store(self, tmp_path):
        database = TrialDatabase(str(tmp_path / "t.sqlite"))
        return database, ArtifactStore(database)

    def test_put_stores_checksum(self, tmp_path):
        _, store = self._store(tmp_path)
        store.put("k1", b"payload-bytes")
        row = store.database.execute(
            "SELECT checksum FROM artifacts WHERE key = 'k1'"
        ).fetchone()
        assert row[0] == artifact_checksum(b"payload-bytes")
        assert store.get("k1") == b"payload-bytes"

    def test_corrupt_sidecar_is_quarantined_on_get(self, tmp_path):
        _, store = self._store(tmp_path)
        store.put("k1", b"good-bytes")
        path = os.path.join(store.blob_dir, "k1.bin")
        with open(path, "wb") as handle:
            handle.write(b"bad-bytes!")
        assert store.get("k1") is None  # a miss, never wrong bytes
        assert store.database.execute(
            "SELECT 1 FROM artifacts WHERE key = 'k1'"
        ).fetchone() is None
        # The evidence moves to quarantine/ instead of being destroyed.
        assert not os.path.exists(path)
        assert os.path.exists(
            os.path.join(store.blob_dir, "quarantine", "k1.bin")
        )
        assert store.stats()["quarantined"] == 1

    def test_corrupt_inline_blob_is_quarantined_on_get(self):
        store = ArtifactStore(TrialDatabase())
        store.put("k1", b"good-bytes")
        store.database.execute(
            "UPDATE artifacts SET blob = ? WHERE key = 'k1'",
            (b"evil-bytes",),
        )
        assert store.get("k1") is None
        assert store.stats()["quarantined"] == 1

    def test_corrupt_blob_fault_site(self):
        """``artifact.corrupt_blob`` flips bytes between the store and
        the reader; checksum verification must catch the flip."""
        store = ArtifactStore(TrialDatabase())
        store.put("k1", b"payload")
        store.put("k2", b"payload-2")
        faults.configure(
            "seed=1;artifact.corrupt_blob=1.0@k1", propagate=False
        )
        try:
            assert store.get("k1") is None
            assert store.get("k2") == b"payload-2"  # other keys untouched
        finally:
            faults.configure(None)
        assert store.stats()["quarantined"] == 1

    def test_scrub_repairs_the_store(self, tmp_path):
        _, store = self._store(tmp_path)
        for key in ("good", "gone", "hurt", "old"):
            store.put(key, key.encode() * 3)
        # "old": a pre-checksum row (migration backfill case).
        store.database.execute(
            "UPDATE artifacts SET checksum = NULL WHERE key = 'old'"
        )
        # "hurt": the bytes on disk are not the bytes that were written.
        with open(os.path.join(store.blob_dir, "hurt.bin"), "wb") as handle:
            handle.write(b"flipped")
        # "gone": sidecar deleted underneath the row.
        os.remove(os.path.join(store.blob_dir, "gone.bin"))
        # A sidecar with no row at all.
        with open(os.path.join(store.blob_dir, "orphan.bin"), "wb") as handle:
            handle.write(b"stray")
        assert store.scrub() == {
            "scanned": 4, "verified": 2, "quarantined": 1,
            "missing": 1, "repaired": 1, "orphans_removed": 1,
        }
        # The backfilled checksum is the real digest...
        row = store.database.execute(
            "SELECT checksum FROM artifacts WHERE key = 'old'"
        ).fetchone()
        assert row[0] == artifact_checksum(b"oldoldold")
        # ...and a second sweep is clean (quarantine/ is not an orphan).
        assert store.scrub() == {
            "scanned": 2, "verified": 2, "quarantined": 0,
            "missing": 0, "repaired": 0, "orphans_removed": 0,
        }

    def test_scrub_dry_run_reports_without_touching(self, tmp_path):
        _, store = self._store(tmp_path)
        store.put("hurt", b"payload")
        with open(os.path.join(store.blob_dir, "hurt.bin"), "wb") as handle:
            handle.write(b"flipped")
        report = store.scrub(repair=False)
        assert report["quarantined"] == 1 and report["orphans_removed"] == 0
        # Dry run: the row survives and nothing moved to quarantine/.
        assert store.database.execute(
            "SELECT 1 FROM artifacts WHERE key = 'hurt'"
        ).fetchone() is not None
        assert not os.path.isdir(os.path.join(store.blob_dir, "quarantine"))
        assert store.stats()["quarantined"] == 0

    def test_corrupted_blob_session_stays_bit_identical(self, tmp_path):
        """The headline guarantee: a flipped bit in the cache degrades to
        a cold re-run of the affected trial, and the tuning outcome stays
        bit-identical to the clean run.  (Runtime/energy meters honestly
        reflect the extra cold compute — see
        ``test_warm_session_cheaper_than_cold`` — so they are excluded.)"""
        db_path = str(tmp_path / "t.sqlite")
        # Outcome = everything but the runtime/energy meters.
        clean = result_signature(tune_result(True, db=db_path))[:4]
        database = TrialDatabase(db_path)
        store = ArtifactStore(database)
        key = database.execute(
            "SELECT key FROM artifacts ORDER BY key LIMIT 1"
        ).fetchone()[0]
        with open(os.path.join(store.blob_dir, key + ".bin"), "r+b") as blob:
            first = blob.read(1)
            blob.seek(0)
            blob.write(bytes([first[0] ^ 0xFF]))
        database.close()
        assert result_signature(tune_result(True, db=db_path))[:4] == clean
        database = TrialDatabase(db_path)
        assert ArtifactStore(database).stats()["quarantined"] >= 1
        database.close()
