"""Tests for the baseline tuning systems (Tune, HyperPower, hierarchical)."""

import pytest

from repro.baselines import (
    HYPERPOWER_GPUS,
    TUNE_DEFAULT_GPUS,
    HierarchicalTuner,
    HyperPowerBaseline,
    TuneBaseline,
)
from repro.budgets import MultiBudget
from repro.storage import TrialDatabase

SAMPLES = 240
FAST_BUDGET = MultiBudget(min_epochs=1, max_epochs=4, min_fraction=0.25)


class TestTuneBaseline:
    def test_ignores_system_parameters(self):
        result = TuneBaseline(
            workload="IC", seed=5, samples=SAMPLES, budget=FAST_BUDGET
        ).tune()
        assert "gpus" not in result.best_configuration
        assert all(
            record.training.gpus == TUNE_DEFAULT_GPUS
            for record in result.trials
        )

    def test_no_inference_awareness(self):
        result = TuneBaseline(
            workload="IC", seed=5, samples=SAMPLES, budget=FAST_BUDGET
        ).tune()
        assert result.inference is None
        assert all(record.inference is None for record in result.trials)

    def test_system_name(self):
        result = TuneBaseline(
            workload="IC", seed=5, samples=SAMPLES, budget=FAST_BUDGET
        ).tune()
        assert result.system == "tune"

    def test_optimises_accuracy_only(self):
        """Tune's best trial is (one of) the highest-accuracy trials at
        the top fidelity."""
        result = TuneBaseline(
            workload="IC", seed=5, samples=SAMPLES, budget=FAST_BUDGET
        ).tune()
        top_fidelity = max(record.fidelity for record in result.trials)
        top_records = [
            record for record in result.trials
            if record.fidelity == top_fidelity
        ]
        assert result.best_accuracy == pytest.approx(
            max(record.accuracy for record in top_records)
        )


class TestHyperPowerBaseline:
    def test_single_gpu_trials(self):
        result = HyperPowerBaseline(
            workload="IC", seed=5, samples=SAMPLES, budget=FAST_BUDGET
        ).tune()
        assert all(
            record.training.gpus == HYPERPOWER_GPUS
            for record in result.trials
        )
        assert result.system == "hyperpower"

    def test_no_inference_awareness(self):
        result = HyperPowerBaseline(
            workload="IC", seed=5, samples=SAMPLES, budget=FAST_BUDGET
        ).tune()
        assert result.inference is None

    def test_power_objective_prefers_cheap_energy(self):
        """Among equal-fidelity trials, HyperPower's winner must have the
        best energy/accuracy ratio."""
        result = HyperPowerBaseline(
            workload="IC", seed=5, samples=SAMPLES, budget=FAST_BUDGET
        ).tune()
        top = max(record.fidelity for record in result.trials)
        candidates = [
            record for record in result.trials if record.fidelity == top
        ]
        best = min(
            candidates,
            key=lambda r: r.training.energy_j / max(r.accuracy, 0.01),
        )
        assert result.best_configuration == best.configuration


class TestHierarchicalTuner:
    def test_two_phase_structure(self):
        """Phase 1 tunes hyperparameters without system parameters; the
        returned configuration then carries a phase-2 GPU choice."""
        result = HierarchicalTuner(
            workload="IC", seed=5, samples=SAMPLES, budget=FAST_BUDGET,
            max_trials=8,
        ).tune()
        assert result.system == "hierarchical"
        assert "gpus" in result.best_configuration
        assert 1 <= result.best_configuration["gpus"] <= 8
        # Phase-1 trials never carried the system parameter.
        assert all(
            "gpus" not in record.configuration for record in result.trials
        )

    def test_costs_include_both_phases(self):
        """The hierarchical total must exceed its phase-1-only part —
        phase 2's sweep is extra work the onefold approach avoids."""
        tuner = HierarchicalTuner(
            workload="IC", seed=5, samples=SAMPLES, budget=FAST_BUDGET,
            max_trials=8,
        )
        result = tuner.tune()
        phase1_energy = sum(
            record.training.energy_j for record in result.trials
        )
        assert result.tuning_energy_j > phase1_energy

    def test_inference_recommendation_present(self):
        result = HierarchicalTuner(
            workload="IC", seed=5, samples=SAMPLES, budget=FAST_BUDGET,
            max_trials=8,
        ).tune()
        assert result.inference is not None


class TestSharedDatabase:
    def test_systems_isolated_in_storage(self):
        database = TrialDatabase()
        TuneBaseline(workload="IC", seed=5, samples=SAMPLES,
                     budget=FAST_BUDGET, database=database,
                     max_trials=4).tune()
        HyperPowerBaseline(workload="IC", seed=5, samples=SAMPLES,
                           budget=FAST_BUDGET, database=database,
                           max_trials=4).tune()
        assert database.trial_count("tune:IC") == 4
        assert database.trial_count("hyperpower:IC") == 4
