"""Batched-trial execution: the ``TrialBatch`` unit and the stacked trainer.

The one invariant everything here defends: a trial trained inside a
K-wide stack is **bit-identical** to the same trial trained alone —
weights, per-epoch losses, accuracy, FLOP accounting, divergence flags.
Grouping, fallback and telemetry tests cover the machinery around it.
"""

import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.core import model_server
from repro.core.model_server import ModelTuningServer, TrialTask
from repro.core.trial_batch import (
    batch_signature,
    evaluate_trial_batch,
    evaluate_task_groups,
    group_tasks,
    resolve_trial_batch,
)
from repro.datasets import make_cifar10
from repro.nn import kernels, train_model
from repro.nn.batched import stack_modules, stackable_model, train_model_batch
from repro.nn.models import get_model_family
from repro.nn.serialize import state_dict
from repro.rng import make_rng
from repro.storage import TrialDatabase
from repro.workloads import get_workload

SAMPLES = 160


@pytest.fixture(autouse=True)
def clean_faults():
    faults.reset()
    yield
    faults.reset()


def model_bytes(model):
    return pickle.dumps(
        {name: value for name, value in sorted(state_dict(model).items())}
    )


def make_task(trial_id=0, seed=11, epochs=1, data_fraction=0.5,
              config_seed=3, workload_id="IC", **overrides):
    workload = get_workload(workload_id)
    space = workload.training_space(include_system=True)
    values = space.sample(make_rng(config_seed)).to_dict()
    fields = dict(
        trial_id=trial_id,
        values={k: int(v) for k, v in values.items()},
        fidelity=1,
        bracket=0,
        rung=0,
        epochs=epochs,
        data_fraction=data_fraction,
        workload_id=workload_id,
        seed=seed,
        samples=SAMPLES,
    )
    fields.update(overrides)
    return TrialTask(**fields)


def train_pair(family_name, num_lanes, dataset_builder, epochs=2,
               batch_size=16, data_fraction=1.0, hyper=None, seeds=None):
    """(serial results+models, batched results+models) for K clones."""
    dataset = dataset_builder()
    train, test = dataset.split(0.2, rng=0)
    family = get_model_family(family_name)
    seeds = seeds or [100 + k for k in range(num_lanes)]
    hyper = hyper or [None] * num_lanes

    serial_models, serial_results = [], []
    for k in range(num_lanes):
        model = family.instantiate(dataset.sample_shape,
                                   dataset.num_classes,
                                   hyper[k], seed=50 + k)
        result = train_model(
            model, family.make_loss(dataset.num_classes), train, test,
            epochs=epochs, batch_size=batch_size, lr=0.05,
            data_fraction=data_fraction, seed=seeds[k],
        )
        serial_models.append(model)
        serial_results.append(result)

    batch_models = [
        family.instantiate(dataset.sample_shape, dataset.num_classes,
                           hyper[k], seed=50 + k)
        for k in range(num_lanes)
    ]
    batch_results = train_model_batch(
        batch_models, family.make_loss(dataset.num_classes), train, test,
        epochs=epochs, batch_size=batch_size, lr=0.05,
        data_fraction=data_fraction, seeds=seeds,
    )
    return serial_models, serial_results, batch_models, batch_results


def assert_results_identical(serial, batched):
    assert serial.accuracy == batched.accuracy
    assert serial.losses == batched.losses
    assert serial.epochs_run == batched.epochs_run
    assert serial.samples_seen == batched.samples_seen
    assert serial.diverged == batched.diverged
    assert serial.forward_flops_per_sample == batched.forward_flops_per_sample
    assert serial.train_total_flops == batched.train_total_flops
    assert serial.parameter_count == batched.parameter_count


class TestStackedTrainerBitIdentity:
    def test_resnet_lanes_match_serial(self):
        sm, sr, bm, br = train_pair(
            "resnet", 3, lambda: make_cifar10(samples=SAMPLES, seed=1),
            hyper=[{"num_layers": 8}, {"num_layers": 8}, {"num_layers": 8}],
        )
        for k in range(3):
            assert_results_identical(sr[k], br[k])
            assert model_bytes(sm[k]) == model_bytes(bm[k])

    def test_m5_conv1d_lanes_match_serial(self):
        from repro.datasets import make_speech_commands

        sm, sr, bm, br = train_pair(
            "m5", 2, lambda: make_speech_commands(samples=96, seed=2),
            epochs=1, batch_size=8,
            hyper=[{"embedding_dim": 16}, {"embedding_dim": 16}],
        )
        for k in range(2):
            assert_results_identical(sr[k], br[k])
            assert model_bytes(sm[k]) == model_bytes(bm[k])

    def test_yolo_conv2d_with_per_lane_dropout(self):
        from repro.datasets import make_coco

        hyper = [{"dropout": 0.1}, {"dropout": 0.3}, {"dropout": 0.0}]
        sm, sr, bm, br = train_pair(
            "yolo", 3, lambda: make_coco(samples=48, seed=3),
            epochs=1, batch_size=8, hyper=hyper,
        )
        for k in range(3):
            assert_results_identical(sr[k], br[k])
            assert model_bytes(sm[k]) == model_bytes(bm[k])

    @settings(max_examples=6, deadline=None)
    @given(
        lanes=st.integers(min_value=1, max_value=4),
        fraction=st.sampled_from([0.25, 0.5, 1.0]),
        batch_size=st.sampled_from([8, 16, 32]),
    )
    def test_property_stacked_equals_serial(self, lanes, fraction,
                                            batch_size):
        sm, sr, bm, br = train_pair(
            "resnet", lanes,
            lambda: make_cifar10(samples=96, seed=4),
            epochs=1, batch_size=batch_size, data_fraction=fraction,
            hyper=[{"num_layers": 8}] * lanes,
        )
        for k in range(lanes):
            assert_results_identical(sr[k], br[k])
            assert model_bytes(sm[k]) == model_bytes(bm[k])

    def test_trainer_nan_fault_isolates_to_its_lane(self):
        """An injected first-batch NaN hits the same lanes stacked as it
        does serially, and healthy lanes stay bit-identical."""
        faults.configure("seed=9;trainer.nan=0.4", propagate=False)
        sm, sr, bm, br = train_pair(
            "resnet", 4, lambda: make_cifar10(samples=96, seed=5),
            epochs=1, hyper=[{"num_layers": 8}] * 4,
        )
        assert any(r.diverged for r in sr)
        assert any(not r.diverged for r in sr)
        for k in range(4):
            assert_results_identical(sr[k], br[k])
            assert model_bytes(sm[k]) == model_bytes(bm[k])


class TestStackability:
    def test_stackable_families_flagged(self):
        assert get_model_family("resnet").stackable
        assert get_model_family("m5").stackable
        assert get_model_family("yolo").stackable
        assert not get_model_family("textrnn").stackable

    def test_stackable_model_rejects_recurrent(self):
        dataset = make_cifar10(samples=32, seed=1)
        model = get_model_family("resnet").instantiate(
            dataset.sample_shape, dataset.num_classes, seed=1
        )
        assert stackable_model(model)

    def test_stack_modules_rejects_shape_mismatch(self):
        from repro.nn.batched import UnstackableModelError

        dataset = make_cifar10(samples=32, seed=1)
        family = get_model_family("resnet")
        a = family.instantiate(dataset.sample_shape, dataset.num_classes,
                               {"num_layers": 8}, seed=1)
        b = family.instantiate(dataset.sample_shape, dataset.num_classes,
                               {"num_layers": 12}, seed=1)
        with pytest.raises(UnstackableModelError):
            stack_modules([a, b])


class TestBatchSignature:
    def test_same_shape_tasks_share_a_signature(self):
        a = make_task(trial_id=0, config_seed=3)
        b = make_task(trial_id=1, config_seed=3)
        assert batch_signature(a) is not None
        assert batch_signature(a) == batch_signature(b)

    def test_scalar_hyperparameters_ride_along(self):
        """Tasks differing only in non-shape values still group."""
        a = make_task(trial_id=0, config_seed=3)
        values = dict(a.values)
        b = make_task(trial_id=1, config_seed=3, values=values)
        assert batch_signature(a) == batch_signature(b)

    def test_shape_hyperparameter_splits_groups(self):
        a = make_task(trial_id=0, config_seed=3)
        values = dict(a.values)
        values["num_layers"] = (
            8 if int(values.get("num_layers", 18)) != 8 else 12
        )
        b = make_task(trial_id=1, values=values)
        assert batch_signature(a) != batch_signature(b)

    def test_warm_resume_lineage_is_serial_only(self):
        assert batch_signature(make_task(reuse=True)) is None
        assert batch_signature(make_task(parent_key="k")) is None
        assert batch_signature(make_task(start_epoch=1)) is None

    def test_reference_backend_is_serial_only(self):
        task = make_task()
        previous = kernels.get_backend()
        kernels.set_backend("reference")
        try:
            assert batch_signature(task) is None
        finally:
            kernels.set_backend(previous)

    def test_non_stackable_family_is_serial_only(self):
        workload = get_workload("NLP")
        if not workload.family.stackable:
            task = make_task(workload_id="NLP", config_seed=5)
            assert batch_signature(task) is None

    def test_group_tasks_partitions_every_index_once(self):
        tasks = [make_task(trial_id=i, config_seed=3) for i in range(5)]
        tasks.append(make_task(trial_id=5, reuse=True))
        groups = group_tasks(tasks, limit=2)
        flat = sorted(i for group in groups for i in group)
        assert flat == list(range(6))
        assert all(len(group) <= 2 for group in groups)
        assert [5] in groups  # the unstackable straggler runs solo

    def test_resolve_trial_batch(self, monkeypatch):
        assert resolve_trial_batch(4) == 4
        assert resolve_trial_batch(1) == 1
        assert resolve_trial_batch(0) == 1
        monkeypatch.setenv("REPRO_TRIAL_BATCH", "3")
        assert resolve_trial_batch(None) == 3
        monkeypatch.setenv("REPRO_TRIAL_BATCH", "junk")
        assert resolve_trial_batch(None, default=1) == 1


class TestEvaluateTrialBatch:
    def test_members_match_serial_evaluate_trial(self):
        from repro.core.model_server import evaluate_trial

        tasks = [make_task(trial_id=i, config_seed=3) for i in range(3)]
        outputs = evaluate_trial_batch(tasks)
        for task, (evaluation, model) in zip(tasks, outputs):
            ref_eval, ref_model = evaluate_trial(task)
            assert pickle.dumps(evaluation) == pickle.dumps(ref_eval)
            assert model_bytes(model) == model_bytes(ref_model)

    def test_artifact_keys_stay_per_trial(self):
        """A stacked run stores each member under the exact key the
        serial path uses, so later serial runs hit the cache."""
        from repro.artifacts import ArtifactStore, trial_key
        from repro.core.model_server import evaluate_trial

        store = ArtifactStore(TrialDatabase())
        tasks = [make_task(trial_id=i, config_seed=3) for i in range(2)]
        evaluate_trial_batch(tasks, artifacts=store)
        assert store.stats()["entries"] == 2
        for task in tasks:
            assert store.load_trial(trial_key(task)) is not None
        hits_before = store.session_hits
        evaluation, _ = evaluate_trial(tasks[0], artifacts=store)
        assert store.session_hits == hits_before + 1

    def test_memoized_members_are_served_not_retrained(self):
        from repro.artifacts import ArtifactStore
        from repro.core.model_server import evaluate_trial

        store = ArtifactStore(TrialDatabase())
        tasks = [make_task(trial_id=i, config_seed=3) for i in range(3)]
        evaluate_trial(tasks[0], artifacts=store)
        outputs = evaluate_trial_batch(tasks, artifacts=store)
        assert len(outputs) == 3
        ref_eval, _ = evaluate_trial(tasks[0], artifacts=store)
        assert pickle.dumps(outputs[0][0]) == pickle.dumps(ref_eval)

    def test_task_groups_driver_preserves_order(self):
        tasks = [make_task(trial_id=i, config_seed=3) for i in range(3)]
        workload = get_workload("IC")
        train_set, eval_set = workload.load(seed=tasks[0].seed,
                                            samples=tasks[0].samples)
        outputs = evaluate_task_groups(tasks, train_set, eval_set, 2)
        assert [o[0].trial_id for o in outputs] == [0, 1, 2]


class TestDatasetCacheMeters:
    def test_hit_miss_eviction_counters(self):
        model_server._DATASET_CACHE.clear()
        before = model_server.dataset_cache_stats()
        task = make_task(seed=91, samples=64)
        model_server.load_task_datasets(task)
        model_server.load_task_datasets(task)
        after = model_server.dataset_cache_stats()
        assert after["misses"] == before["misses"] + 1
        assert after["hits"] == before["hits"] + 1
        assert after["size"] >= 1

    def test_cache_cap_env_override(self, monkeypatch):
        model_server._DATASET_CACHE.clear()
        monkeypatch.setenv("REPRO_DATASET_CACHE_MAX", "2")
        before = model_server.dataset_cache_stats()["evictions"]
        for seed in range(4):
            model_server.load_task_datasets(
                make_task(seed=200 + seed, samples=64)
            )
        assert len(model_server._DATASET_CACHE) == 2
        assert model_server.dataset_cache_stats()["evictions"] == before + 2


class TestQueueGroupLeasing:
    def make_queue(self):
        from repro.service.queue import JobQueue

        database = TrialDatabase()
        return JobQueue(database)

    def test_peek_queued_does_not_claim(self):
        queue = self.make_queue()
        for trial_id in range(3):
            queue.enqueue("s", trial_id, "{}")
        peeked = queue.peek_queued(session_id="s")
        assert [job.trial_id for job in peeked] == [0, 1, 2]
        assert all(job.attempts == 0 for job in peeked)
        # Still leasable afterwards: nothing was claimed.
        assert queue.lease("w") is not None

    def test_lease_by_id_claims_exactly_one(self):
        queue = self.make_queue()
        for trial_id in range(2):
            queue.enqueue("s", trial_id, "{}")
        target = queue.peek_queued(session_id="s")[1]
        job = queue.lease_by_id(target.id, "w")
        assert job is not None and job.trial_id == 1
        assert queue.lease_by_id(target.id, "w") is None  # already leased
        remaining = queue.lease("w2")
        assert remaining.trial_id == 0

    def test_lease_by_id_fresh_only_skips_retries(self):
        import time

        queue = self.make_queue()
        queue.enqueue("s", 0, "{}")
        job = queue.lease("w")
        queue.fail(job.id, "w", "boom")  # requeued with attempts=1
        later = time.time() + 3600.0  # past the retry backoff
        retry = queue.peek_queued(session_id="s", now=later)[0]
        assert retry.attempts == 1
        assert queue.lease_by_id(
            retry.id, "w", fresh_only=True, now=later
        ) is None
        assert queue.lease_by_id(retry.id, "w", now=later) is not None


class TestWorkerGrouping:
    def run_session(self, trial_batch, max_trials=6):
        from repro.service import SessionSpec, SessionCoordinator
        from repro.service.sessions import SessionStore

        database = TrialDatabase()
        spec = SessionSpec(
            workload="IC", seed=5, samples=SAMPLES,
            max_trials=max_trials, trial_batch=trial_batch,
        )
        session_id = SessionStore(database).create(spec)
        coordinator = SessionCoordinator(
            database, session_id, workers=0, poll_interval_s=0.01
        )
        result = coordinator.run()
        record = SessionStore(database).get(session_id)
        return result, record, coordinator

    def test_service_batched_equals_serial(self):
        serial_result, serial_record, _ = self.run_session(1)
        batched_result, batched_record, coordinator = self.run_session(8)
        assert (serial_result.best_accuracy
                == batched_result.best_accuracy)
        assert (serial_result.best_configuration
                == batched_result.best_configuration)
        assert (serial_result.tuning_runtime_s
                == batched_result.tuning_runtime_s)
        assert (serial_record.result["best_accuracy"]
                == batched_record.result["best_accuracy"])
        for a, b in zip(serial_result.trials, batched_result.trials):
            assert a.trial_id == b.trial_id
            assert a.accuracy == b.accuracy
            assert a.score == b.score

    def test_worker_occupancy_meters(self):
        from repro.fleet.registry import MachineRegistry

        _, record, coordinator = self.run_session(8)
        # Fleet counters persist in the database the coordinator used.
        registry = MachineRegistry(coordinator.database)
        stats = registry.stats()
        grouped = stats.get("batch.groups", 0)
        fallback = stats.get("batch.serial_fallback", 0)
        assert grouped + fallback > 0
        if grouped:
            assert stats.get("batch.members", 0) >= 2
            assert stats.get("batch.max_k", 0) >= 2


class TestInProcessRun:
    def test_run_batched_equals_serial_run(self):
        def run(trial_batch):
            workload = get_workload("IC")
            server = ModelTuningServer(
                workload=workload, algorithm="sha", seed=5,
                samples=SAMPLES, max_trials=8, trial_batch=trial_batch,
            )
            return server.run()

        serial = run(1)
        batched = run(8)
        assert serial.best_accuracy == batched.best_accuracy
        assert serial.best_configuration == batched.best_configuration
        assert serial.tuning_runtime_s == batched.tuning_runtime_s
        assert serial.tuning_energy_j == batched.tuning_energy_j
        for a, b in zip(serial.trials, batched.trials):
            assert a.trial_id == b.trial_id
            assert a.accuracy == b.accuracy
            assert a.score == b.score

    def test_adaptive_searcher_keeps_serial_path(self):
        """Plain TPE must observe each report before the next suggest,
        so the batched wave driver refuses it (wave_safe gate)."""
        from repro.search import build_scheduler
        from repro.workloads import get_workload

        workload = get_workload("IC")
        space = workload.training_space(include_system=True)
        tpe = build_scheduler("tpe", space, num_trials=4, seed=1)
        assert not tpe.wave_safe
        sha = build_scheduler("sha", space, seed=1)
        assert sha.wave_safe
