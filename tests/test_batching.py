"""Tests for the queueing simulations and the batch-size optimizer (§3.4)."""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batching import (
    MultiStreamScenario,
    ServerScenario,
    optimize_batch_size,
    simulate_multistream_scenario,
    simulate_server_scenario,
)
from repro.errors import ConfigurationError


def amortised_latency(batch_size: int) -> float:
    """A typical device latency curve: fixed per-call cost + per-sample
    cost, so batching amortises the overhead."""
    return 0.05 + 0.01 * batch_size


class TestServerScenario:
    def test_stable_when_service_fits_period(self):
        result = simulate_server_scenario(
            amortised_latency, samples_per_query=10, period_s=1.0,
            batch_size=10,
        )
        assert result.stable
        # Response = one batched call, no queueing.
        assert result.mean_response_s == pytest.approx(0.15)

    def test_unstable_when_overloaded(self):
        result = simulate_server_scenario(
            amortised_latency, samples_per_query=100, period_s=0.5,
            batch_size=1, num_queries=100,
        )
        assert not result.stable
        # Queue grows linearly: late queries wait far longer than early
        # ones, so p95 sits well above the mean.
        assert result.p95_response_s > 1.5 * result.mean_response_s

    def test_batching_reduces_response(self):
        """The paper's server scenario: splitting N samples into bigger
        batches cuts per-call overhead."""
        small = simulate_server_scenario(
            amortised_latency, 40, period_s=5.0, batch_size=1
        )
        large = simulate_server_scenario(
            amortised_latency, 40, period_s=5.0, batch_size=20
        )
        assert large.mean_response_s < small.mean_response_s

    def test_remainder_batch_served(self):
        result = simulate_server_scenario(
            amortised_latency, samples_per_query=7, period_s=2.0,
            batch_size=4,
        )
        # 7 = 4 + 3: two calls
        expected = amortised_latency(4) + amortised_latency(3)
        assert result.mean_response_s == pytest.approx(expected)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            simulate_server_scenario(amortised_latency, 0, 1.0, 1)
        with pytest.raises(ConfigurationError):
            simulate_server_scenario(amortised_latency, 1, 0.0, 1)

    def test_divergent_queue_short_circuits(self):
        """An overloaded sweep candidate must not grind through every
        query: the simulation truncates deterministically once the queue
        has provably diverged, even for an absurd ``num_queries``."""
        start = time.perf_counter()
        result = simulate_server_scenario(
            amortised_latency, samples_per_query=100, period_s=0.5,
            batch_size=1, num_queries=10_000_000,
        )
        assert time.perf_counter() - start < 1.0
        assert result.truncated
        assert not result.stable
        # Statistics cover only the queries served before the cut-off.
        assert result.samples_processed < 10_000_000 * 100
        assert result.samples_processed % 100 == 0

    def test_truncation_is_deterministic(self):
        results = [
            simulate_server_scenario(
                amortised_latency, samples_per_query=100, period_s=0.5,
                batch_size=1, num_queries=5_000,
            )
            for _ in range(2)
        ]
        assert results[0] == results[1]
        # The cut-off is a pure function of the scenario: the same
        # truncated stats regardless of how many more queries were asked.
        longer = simulate_server_scenario(
            amortised_latency, samples_per_query=100, period_s=0.5,
            batch_size=1, num_queries=50_000,
        )
        assert longer == results[0]

    def test_stable_scenario_never_truncates(self):
        result = simulate_server_scenario(
            amortised_latency, samples_per_query=10, period_s=1.0,
            batch_size=10, num_queries=500,
        )
        assert not result.truncated
        assert result.stable
        assert result.samples_processed == 500 * 10


class TestMultiStreamScenario:
    def test_deterministic_given_seed(self):
        a = simulate_multistream_scenario(
            amortised_latency, 5.0, 4, num_samples=500, seed=1
        )
        b = simulate_multistream_scenario(
            amortised_latency, 5.0, 4, num_samples=500, seed=1
        )
        assert a.mean_response_s == b.mean_response_s

    def test_batching_helps_under_load(self):
        """Paper Fig 8: aggregating Poisson arrivals improves the mean
        response time when single-sample service cannot keep up."""
        # Single-sample service rate: 1/0.06 ≈ 16.7/s < arrival 20/s.
        single = simulate_multistream_scenario(
            amortised_latency, 20.0, 1, num_samples=1500, seed=2
        )
        batched = simulate_multistream_scenario(
            amortised_latency, 20.0, 16, num_samples=1500, seed=2
        )
        assert batched.mean_response_s < single.mean_response_s
        assert batched.stable

    def test_all_samples_processed(self):
        result = simulate_multistream_scenario(
            amortised_latency, 3.0, 4, num_samples=777, seed=0
        )
        assert result.samples_processed == 777

    def test_light_load_batches_stay_small(self):
        """With rare arrivals the greedy policy serves ~single samples,
        so batch_size barely matters."""
        a = simulate_multistream_scenario(
            amortised_latency, 0.5, 1, num_samples=300, seed=3
        )
        b = simulate_multistream_scenario(
            amortised_latency, 0.5, 32, num_samples=300, seed=3
        )
        assert a.mean_response_s == pytest.approx(
            b.mean_response_s, rel=0.05
        )

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            simulate_multistream_scenario(amortised_latency, 0.0, 1)


class TestOptimizer:
    def test_finds_amortising_batch_for_server(self):
        scenario = ServerScenario(samples_per_query=50, period_s=4.0)
        sweep = optimize_batch_size(amortised_latency, scenario)
        assert sweep.best_batch_size > 1
        assert sweep.best.stable

    def test_prefers_stability(self):
        """A configuration that keeps up beats a faster-but-overloaded
        one."""
        def saturating(batch):
            # Large batches blow past a memory cliff.
            return 0.02 + 0.01 * batch + (0.3 if batch > 32 else 0.0)

        scenario = MultiStreamScenario(arrival_rate_sps=25.0, seed=4)
        sweep = optimize_batch_size(saturating, scenario)
        assert sweep.best.stable
        assert sweep.best_batch_size <= 32

    def test_empty_candidates_rejected(self):
        with pytest.raises(ConfigurationError):
            optimize_batch_size(
                amortised_latency,
                ServerScenario(10, 1.0),
                candidates=(),
            )

    def test_sweep_reports_all_candidates(self):
        scenario = ServerScenario(samples_per_query=10, period_s=2.0)
        sweep = optimize_batch_size(
            amortised_latency, scenario, candidates=(1, 2, 4)
        )
        assert [r.batch_size for r in sweep.results] == [1, 2, 4]


@given(
    rate=st.floats(0.5, 30.0),
    batch=st.integers(1, 64),
    seed=st.integers(0, 1000),
)
@settings(max_examples=30, deadline=None)
def test_property_multistream_invariants(rate, batch, seed):
    result = simulate_multistream_scenario(
        amortised_latency, rate, batch, num_samples=400, seed=seed
    )
    # Response time can never be below the single-call latency floor.
    assert result.mean_response_s >= amortised_latency(1) * 0.9
    assert 0.0 <= result.utilisation <= 1.0
    assert result.samples_processed == 400


@given(
    samples=st.integers(1, 60),
    batch=st.integers(1, 60),
    period=st.floats(0.1, 5.0),
)
@settings(max_examples=30, deadline=None)
def test_property_server_throughput_bounded(samples, batch, period):
    result = simulate_server_scenario(
        amortised_latency, samples, period, batch, num_queries=50
    )
    # Cannot process meaningfully faster than arrivals deliver (small
    # tolerance for the finite-horizon edge effect of the last query).
    assert result.throughput_sps <= samples / period * 1.05
