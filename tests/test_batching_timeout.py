"""Tests for the timeout-based batching policy and storage export."""

import json

import pytest

from repro.batching.queueing import (
    simulate_multistream_scenario,
    simulate_multistream_timeout,
)
from repro.errors import ConfigurationError
from repro.storage import StoredInferenceResult, TrialDatabase


def amortised_latency(batch_size: int) -> float:
    return 0.05 + 0.01 * batch_size


class TestTimeoutBatching:
    def test_zero_timeout_is_greedy_like(self):
        """With max_wait 0 the policy degenerates to take-what-arrived,
        matching the greedy policy's behaviour closely."""
        greedy = simulate_multistream_scenario(
            amortised_latency, 10.0, 8, num_samples=800, seed=3
        )
        timeout = simulate_multistream_timeout(
            amortised_latency, 10.0, 8, max_wait_s=0.0,
            num_samples=800, seed=3,
        )
        assert timeout.mean_response_s == pytest.approx(
            greedy.mean_response_s, rel=0.35
        )

    def test_all_samples_processed(self):
        result = simulate_multistream_timeout(
            amortised_latency, 5.0, 4, max_wait_s=0.2,
            num_samples=333, seed=0,
        )
        assert result.samples_processed == 333

    def test_waiting_trades_latency_for_amortisation(self):
        """Waiting for batches to fill costs latency but amortises the
        per-call overhead: engine utilisation (work per sample) drops."""
        rate = 25.0
        eager = simulate_multistream_timeout(
            amortised_latency, rate, 16, max_wait_s=0.0,
            num_samples=1200, seed=2,
        )
        patient = simulate_multistream_timeout(
            amortised_latency, rate, 16, max_wait_s=0.5,
            num_samples=1200, seed=2,
        )
        assert patient.utilisation < eager.utilisation
        assert patient.mean_response_s > eager.mean_response_s
        assert patient.stable

    def test_deterministic(self):
        a = simulate_multistream_timeout(
            amortised_latency, 5.0, 4, 0.1, num_samples=200, seed=9
        )
        b = simulate_multistream_timeout(
            amortised_latency, 5.0, 4, 0.1, num_samples=200, seed=9
        )
        assert a.mean_response_s == b.mean_response_s

    def test_invalid_wait(self):
        with pytest.raises(ConfigurationError):
            simulate_multistream_timeout(
                amortised_latency, 5.0, 4, max_wait_s=-1.0
            )


class TestStorageExport:
    def test_export_json_roundtrip(self, tmp_path):
        db = TrialDatabase()
        db.record_trial("e1", 0, {"x": 1}, 1, 2, 0.5, 0.8, 1.0, 10.0, 100.0)
        db.store_inference(StoredInferenceResult(
            architecture_key="a", device="armv7",
            objective="inference-energy",
            configuration={"inference_batch_size": 4},
            batch_latency_s=0.2, throughput_sps=20.0,
            energy_per_sample_j=0.1, power_w=2.0,
            tuning_runtime_s=5.0, tuning_energy_j=175.0,
        ))
        path = str(tmp_path / "dump.json")
        db.export_json(path)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["trials"]["e1"][0]["accuracy"] == 0.8
        assert payload["inference_results"][0]["device"] == "armv7"

    def test_experiment_summary(self):
        db = TrialDatabase()
        for i, acc in enumerate((0.4, 0.7, 0.6)):
            db.record_trial("e", i, {}, i + 1, 1, 1.0, acc, 1.0, 10.0, 50.0)
        summary = db.experiment_summary("e")
        assert summary["trials"] == 3
        assert summary["best_accuracy"] == 0.7
        assert summary["total_train_runtime_s"] == pytest.approx(30.0)
        assert summary["max_fidelity"] == 3

    def test_summary_missing_experiment(self):
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            TrialDatabase().experiment_summary("nope")
