"""Tests for the budget strategies (paper §4.3, Algorithm 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.budgets import (
    BUDGET_NAMES,
    DatasetBudget,
    EpochBudget,
    MultiBudget,
    TrialBudget,
    build_budget,
)
from repro.errors import BudgetError


class TestTrialBudget:
    def test_relative_cost(self):
        assert TrialBudget(4, 0.5).relative_cost == 2.0

    def test_invalid(self):
        with pytest.raises(BudgetError):
            TrialBudget(0, 1.0)
        with pytest.raises(BudgetError):
            TrialBudget(1, 0.0)
        with pytest.raises(BudgetError):
            TrialBudget(1, 1.5)


class TestEpochBudget:
    def test_grows_linearly_then_caps(self):
        budget = EpochBudget(min_epochs=2, max_epochs=10)
        assert budget.budget(1) == TrialBudget(2, 1.0)
        assert budget.budget(3) == TrialBudget(6, 1.0)
        assert budget.budget(9) == TrialBudget(10, 1.0)

    def test_always_full_dataset(self):
        budget = EpochBudget()
        for it in range(1, 20):
            assert budget.budget(it).data_fraction == 1.0

    def test_max_iteration(self):
        assert EpochBudget(min_epochs=2, max_epochs=10).max_iteration == 5
        assert EpochBudget(min_epochs=1, max_epochs=16).max_iteration == 16

    def test_invalid_range(self):
        with pytest.raises(BudgetError):
            EpochBudget(min_epochs=8, max_epochs=4)

    def test_invalid_iteration(self):
        with pytest.raises(BudgetError):
            EpochBudget().budget(0)


class TestDatasetBudget:
    def test_single_epoch_growing_data(self):
        budget = DatasetBudget(min_fraction=0.1)
        for it, fraction in ((1, 0.1), (5, 0.5), (15, 1.0)):
            trial = budget.budget(it)
            assert trial.epochs == 1
            assert trial.data_fraction == pytest.approx(fraction)

    def test_max_iteration(self):
        assert DatasetBudget(0.1).max_iteration == 10
        assert DatasetBudget(0.25).max_iteration == 4

    def test_invalid_fraction(self):
        with pytest.raises(BudgetError):
            DatasetBudget(0.0)


class TestMultiBudget:
    def test_paper_example(self):
        """§4.3: min_epochs=2, min_fraction=0.1, max_epochs=10 — the 2nd
        iteration uses 4 epochs on 20 %; from iteration 5 epochs cap at
        10 while data keeps growing to iteration 10."""
        budget = MultiBudget(min_epochs=2, max_epochs=10, min_fraction=0.1)
        expected = {2: (4, 0.2), 3: (6, 0.3), 5: (10, 0.5), 7: (10, 0.7),
                    10: (10, 1.0), 12: (10, 1.0)}
        for it, (epochs, fraction) in expected.items():
            trial = budget.budget(it)
            assert trial.epochs == epochs
            assert trial.data_fraction == pytest.approx(fraction)
        assert budget.max_iteration == 10

    def test_cheaper_than_epoch_budget_at_low_fidelity(self):
        """The whole point: early iterations cost a fraction of the
        epoch-based budget, converging to the same maximum."""
        multi = MultiBudget(min_epochs=1, max_epochs=16, min_fraction=0.1)
        epochs = EpochBudget(min_epochs=1, max_epochs=16)
        for it in range(1, 10):
            assert (
                multi.budget(it).relative_cost
                < epochs.budget(it).relative_cost
            )
        top = multi.max_iteration
        assert multi.budget(top).relative_cost == pytest.approx(
            epochs.budget(epochs.max_iteration).relative_cost
        )

    def test_dimensions_saturate_independently(self):
        budget = MultiBudget(min_epochs=4, max_epochs=8, min_fraction=0.2)
        # epochs cap at iteration 2, data at iteration 5
        assert budget.budget(2).epochs == 8
        assert budget.budget(2).data_fraction == pytest.approx(0.4)
        assert budget.budget(5).data_fraction == 1.0
        assert budget.max_iteration == 5


class TestRegistry:
    def test_names(self):
        for name in BUDGET_NAMES:
            assert build_budget(name) is not None

    def test_aliases(self):
        assert isinstance(build_budget("multi_budget"), MultiBudget)
        assert isinstance(build_budget("multibudget"), MultiBudget)

    def test_kwargs_forwarded(self):
        budget = build_budget("epochs", min_epochs=3, max_epochs=9)
        assert budget.budget(1).epochs == 3

    def test_unknown(self):
        with pytest.raises(BudgetError):
            build_budget("time")


@given(it=st.integers(1, 100))
@settings(max_examples=50, deadline=None)
def test_property_budgets_monotone_and_bounded(it):
    """For every strategy: cost is non-decreasing in the iteration and
    never exceeds one full-budget training."""
    for budget in (EpochBudget(), DatasetBudget(), MultiBudget()):
        current = budget.budget(it)
        nxt = budget.budget(it + 1)
        assert nxt.relative_cost >= current.relative_cost
        full = budget.budget(budget.max_iteration + 5)
        assert current.relative_cost <= full.relative_cost


@given(
    min_epochs=st.integers(1, 8),
    extra=st.integers(0, 32),
    fraction=st.floats(0.05, 1.0),
    it=st.integers(1, 64),
)
@settings(max_examples=50, deadline=None)
def test_property_multi_budget_caps(min_epochs, extra, fraction, it):
    budget = MultiBudget(
        min_epochs=min_epochs,
        max_epochs=min_epochs + extra,
        min_fraction=fraction,
    )
    trial = budget.budget(it)
    assert trial.epochs <= min_epochs + extra
    assert 0.0 < trial.data_fraction <= 1.0
    at_max = budget.budget(budget.max_iteration)
    assert at_max.epochs == min_epochs + extra
    assert at_max.data_fraction == 1.0
