"""Tests for the command-line interfaces."""

import pytest

from repro.__main__ import main as repro_main
from repro.experiments.__main__ import main as experiments_main


class TestReproCli:
    def test_devices(self, capsys):
        assert repro_main(["devices"]) == 0
        out = capsys.readouterr().out
        for device in ("armv7", "raspberrypi3b", "i7nuc", "titan-server"):
            assert device in out

    def test_workloads(self, capsys):
        assert repro_main(["workloads"]) == 0
        out = capsys.readouterr().out
        for workload in ("IC", "SR", "NLP", "OD"):
            assert workload in out

    def test_tune_minimal(self, capsys):
        code = repro_main([
            "tune", "IC", "--samples", "200", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best accuracy" in out
        assert "deployment" in out

    def test_tune_baseline_system(self, capsys):
        code = repro_main([
            "tune", "IC", "--system", "hyperpower",
            "--samples", "200", "--seed", "3", "--budget", "dataset",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "hyperpower" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            repro_main(["tune", "MNIST"])


class TestExperimentsCli:
    def test_list(self, capsys):
        assert experiments_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig14" in out and "table1" in out
        assert "ablation_cache" in out

    def test_run_one(self, capsys):
        assert experiments_main(["--fast", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Workloads used for experiments" in out

    def test_save_to_directory(self, tmp_path, capsys):
        assert experiments_main(
            ["--fast", "--out", str(tmp_path), "fig05"]
        ) == 0
        assert (tmp_path / "fig05.txt").exists()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            experiments_main(["fig99"])

    def test_no_args_rejected(self):
        with pytest.raises(SystemExit):
            experiments_main([])
