"""Tests for the command-line interfaces."""

import pytest

from repro.__main__ import main as repro_main
from repro.experiments.__main__ import main as experiments_main


class TestReproCli:
    def test_devices(self, capsys):
        assert repro_main(["devices"]) == 0
        out = capsys.readouterr().out
        for device in ("armv7", "raspberrypi3b", "i7nuc", "titan-server"):
            assert device in out

    def test_workloads(self, capsys):
        assert repro_main(["workloads"]) == 0
        out = capsys.readouterr().out
        for workload in ("IC", "SR", "NLP", "OD"):
            assert workload in out

    def test_tune_minimal(self, capsys):
        code = repro_main([
            "tune", "IC", "--samples", "200", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best accuracy" in out
        assert "deployment" in out

    def test_tune_baseline_system(self, capsys):
        code = repro_main([
            "tune", "IC", "--system", "hyperpower",
            "--samples", "200", "--seed", "3", "--budget", "dataset",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "hyperpower" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            repro_main(["tune", "MNIST"])

    def test_traffic_replay_json_deterministic(self, capsys):
        import json

        scenario = "diurnal:rate=20,duration=10,seed=3"
        outputs = []
        for _ in range(2):
            code = repro_main(["traffic", "replay", scenario, "--json"])
            assert code == 0
            outputs.append(json.loads(capsys.readouterr().out))
        assert outputs[0] == outputs[1]
        report = outputs[0]
        assert report["requests"] > 0
        assert "p99_latency_s" in report and "digest" in report

    def test_traffic_compare_sweeps_candidates(self, capsys):
        code = repro_main([
            "traffic", "compare", "flash:rate=20,duration=10,seed=3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "p99" in out
        assert "batch" in out

    def test_traffic_bad_scenario_rejected(self, capsys):
        assert repro_main(["traffic", "replay", "tsunami:rate=1"]) == 1
        assert "unknown trace family" in capsys.readouterr().err

    def test_tune_slo_requires_traffic(self, capsys):
        code = repro_main([
            "tune", "IC", "--samples", "200", "--slo-p99", "0.5",
        ])
        assert code == 2
        assert "need --traffic" in capsys.readouterr().err

    def test_tune_under_traffic(self, capsys):
        code = repro_main([
            "tune", "IC", "--samples", "200", "--seed", "3",
            "--traffic", "flash:rate=20,duration=10,seed=3",
            "--traffic-metric", "deadline", "--slo-deadline", "0.5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "deployment" in out


class TestExperimentsCli:
    def test_list(self, capsys):
        assert experiments_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig14" in out and "table1" in out
        assert "ablation_cache" in out

    def test_run_one(self, capsys):
        assert experiments_main(["--fast", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Workloads used for experiments" in out

    def test_save_to_directory(self, tmp_path, capsys):
        assert experiments_main(
            ["--fast", "--out", str(tmp_path), "fig05"]
        ) == 0
        assert (tmp_path / "fig05.txt").exists()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            experiments_main(["fig99"])

    def test_no_args_rejected(self):
        with pytest.raises(SystemExit):
            experiments_main([])


class TestServiceCli:
    def test_submit_status_json_roundtrip(self, tmp_path, capsys):
        import json

        from repro.service.__main__ import main as service_main

        db = str(tmp_path / "svc.sqlite")
        assert service_main([
            "submit", "IC", "--db", db, "--max-trials", "4",
            "--samples", "160", "--warm-start",
        ]) == 0
        session_id = capsys.readouterr().out.strip()

        assert service_main(["status", "--db", db, "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert [row["session"] for row in listing] == [session_id]
        assert listing[0]["state"] == "queued"
        assert listing[0]["spec"]["warm_start"] is True

        assert service_main(["workers", "--db", db, "--drain"]) == 0
        capsys.readouterr()

        assert service_main(["status", "--db", db, "--json",
                             session_id]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["state"] == "done"
        assert status["jobs"]["done"] == 4
        assert status["result"]["num_trials"] == 4

    def test_status_plain_text_unchanged(self, tmp_path, capsys):
        from repro.service.__main__ import main as service_main

        db = str(tmp_path / "svc.sqlite")
        service_main(["submit", "IC", "--db", db])
        capsys.readouterr()
        assert service_main(["status", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "queued" in out


class TestTuneWarmStartCli:
    def test_warm_start_requires_db(self, capsys):
        assert repro_main(["tune", "IC", "--warm-start"]) == 2
        assert "--db" in capsys.readouterr().err

    def test_warm_start_rejects_hierarchical(self, tmp_path, capsys):
        db = str(tmp_path / "t.sqlite")
        code = repro_main(["tune", "IC", "--system", "hierarchical",
                           "--warm-start", "--db", db])
        assert code == 2

    def test_warm_start_reports_absorbed_trials(self, tmp_path, capsys):
        db = str(tmp_path / "t.sqlite")
        base = ["tune", "IC", "--system", "tune", "--samples", "160",
                "--seed", "3", "--db", db]
        assert repro_main(base) == 0
        capsys.readouterr()
        assert repro_main(base + ["--warm-start"]) == 0
        out = capsys.readouterr().out
        assert "warm-started from:" in out
        absorbed = int(out.split("warm-started from:")[1].split()[0])
        assert absorbed > 0


class TestAdvisorCli:
    def make_kb(self, tmp_path):
        from repro.advisor import KnowledgeBase
        from repro.storage import TrialDatabase
        from tests.test_advisor_kb import index

        db = str(tmp_path / "kb.sqlite")
        with TrialDatabase(db) as database:
            index(KnowledgeBase(database))
        return db

    def test_dispatch_from_top_level(self, capsys):
        with pytest.raises(SystemExit):
            repro_main(["advisor", "--help"])
        assert "serve" in capsys.readouterr().out

    def test_ask_in_process(self, tmp_path, capsys):
        import json

        db = self.make_kb(tmp_path)
        assert repro_main(["advisor", "ask", "IC", "--db", db,
                           "--target", "0.8"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exact"] is True
        assert payload["best_configuration"]

    def test_ask_nearest_flagged(self, tmp_path, capsys):
        import json

        db = self.make_kb(tmp_path)
        assert repro_main(["advisor", "ask", "SR", "--db", db]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exact"] is False

    def test_ask_exact_miss_fails(self, tmp_path, capsys):
        db = self.make_kb(tmp_path)
        assert repro_main(["advisor", "ask", "SR", "--db", db,
                           "--exact"]) == 1

    def test_index_empty_database(self, tmp_path, capsys):
        db = str(tmp_path / "empty.sqlite")
        assert repro_main(["advisor", "index", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "sessions indexed:  0" in out
