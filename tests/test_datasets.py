"""Tests for the synthetic datasets and the Dataset container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    Dataset,
    build_dataset,
    dataset_names,
    make_agnews,
    make_cifar10,
    make_coco,
    make_speech_commands,
)
from repro.errors import BudgetError, ShapeError, WorkloadError


class TestDatasetContainer:
    def make(self, n=50):
        rng = np.random.default_rng(0)
        return Dataset(
            "d", rng.normal(size=(n, 3)), rng.integers(4, size=n), 4
        )

    def test_length_and_shape(self):
        ds = self.make(50)
        assert len(ds) == 50
        assert ds.sample_shape == (3,)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ShapeError):
            Dataset("d", np.zeros((5, 2)), np.zeros(4, dtype=int), 2)

    def test_detection_targets_validated(self):
        with pytest.raises(ShapeError):
            Dataset("d", np.zeros((5, 2)), np.zeros((5, 3)), 2,
                    task="detection")

    def test_subset_fraction(self):
        ds = self.make(100)
        sub = ds.subset(0.3, rng=1)
        assert len(sub) == 30

    def test_subset_full_returns_self(self):
        ds = self.make()
        assert ds.subset(1.0) is ds

    def test_subset_keeps_at_least_one(self):
        ds = self.make(10)
        assert len(ds.subset(0.001, rng=0)) == 1

    def test_subset_invalid_fraction(self):
        with pytest.raises(BudgetError):
            self.make().subset(0.0)
        with pytest.raises(BudgetError):
            self.make().subset(1.5)

    def test_subset_deterministic(self):
        ds = self.make(100)
        a = ds.subset(0.5, rng=7)
        b = ds.subset(0.5, rng=7)
        np.testing.assert_array_equal(a.features, b.features)

    def test_split_sizes(self):
        train, test = self.make(100).split(0.2, rng=0)
        assert len(train) == 80 and len(test) == 20

    def test_split_disjoint(self):
        ds = self.make(60)
        ds.features = np.arange(60)[:, None].astype(float)
        train, test = ds.split(0.25, rng=3)
        train_ids = set(train.features[:, 0].astype(int))
        test_ids = set(test.features[:, 0].astype(int))
        assert not train_ids & test_ids
        assert len(train_ids | test_ids) == 60

    def test_batches_cover_everything(self):
        ds = self.make(53)
        seen = sum(len(x) for x, _ in ds.batches(8, rng=0))
        assert seen == 53

    def test_batches_partial_last(self):
        sizes = [len(x) for x, _ in self.make(10).batches(4, rng=0)]
        assert sizes == [4, 4, 2]

    def test_batches_invalid_size(self):
        with pytest.raises(BudgetError):
            list(self.make().batches(0))

    def test_batches_no_shuffle_is_ordered(self):
        ds = self.make(12)
        ds.features = np.arange(12)[:, None].astype(float)
        chunks = [x[:, 0].tolist() for x, _ in ds.batches(5, shuffle=False)]
        assert chunks[0] == [0, 1, 2, 3, 4]

    def test_take(self):
        assert len(self.make(30).take(7)) == 7


GENERATORS = [
    ("cifar10", make_cifar10, "classification"),
    ("speechcommands", make_speech_commands, "classification"),
    ("agnews", make_agnews, "classification"),
    ("coco", make_coco, "detection"),
]


class TestSyntheticGenerators:
    @pytest.mark.parametrize("name,maker,task", GENERATORS)
    def test_basic_properties(self, name, maker, task):
        ds = maker(samples=120, seed=3)
        assert len(ds) == 120
        assert ds.task == task
        assert np.isfinite(ds.features).all()

    @pytest.mark.parametrize("name,maker,task", GENERATORS)
    def test_deterministic(self, name, maker, task):
        a = maker(samples=40, seed=9)
        b = maker(samples=40, seed=9)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.targets, b.targets)

    @pytest.mark.parametrize("name,maker,task", GENERATORS)
    def test_seed_changes_data(self, name, maker, task):
        a = maker(samples=40, seed=1)
        b = maker(samples=40, seed=2)
        assert not np.array_equal(a.features, b.features)

    def test_cifar_shapes(self):
        ds = make_cifar10(samples=10, image_size=8)
        assert ds.sample_shape == (3, 8, 8)
        assert ds.num_classes == 10

    def test_speech_is_channel_first_audio(self):
        ds = make_speech_commands(samples=10, length=64)
        assert ds.sample_shape == (1, 64)

    def test_agnews_sequence_shape(self):
        ds = make_agnews(samples=10, sequence_length=12, embedding_dim=6)
        assert ds.sample_shape == (12, 6)
        assert ds.num_classes == 4

    def test_coco_box_targets_normalised(self):
        ds = make_coco(samples=50, seed=1)
        boxes = ds.targets[:, :4]
        assert (boxes >= 0).all() and (boxes <= 1).all()
        classes = ds.targets[:, 4]
        assert classes.max() < ds.num_classes

    def test_all_classes_present(self):
        ds = make_cifar10(samples=500, seed=0)
        assert len(np.unique(ds.targets)) == 10

    def test_classes_are_separable(self):
        """A nearest-prototype classifier must beat chance by a wide
        margin — the datasets must be genuinely learnable."""
        ds = make_cifar10(samples=400, noise=1.0, seed=5)
        flat = ds.features.reshape(len(ds), -1)
        prototypes = np.stack([
            flat[ds.targets == c].mean(axis=0) for c in range(10)
        ])
        distances = ((flat[:, None, :] - prototypes[None]) ** 2).sum(axis=2)
        accuracy = (distances.argmin(axis=1) == ds.targets).mean()
        assert accuracy > 0.5


class TestRegistry:
    def test_names(self):
        assert set(dataset_names()) == {
            "cifar10", "speechcommands", "agnews", "coco"
        }

    def test_build_by_name_variants(self):
        for name in ("cifar10", "CIFAR10", "synthetic-cifar10"):
            ds = build_dataset(name, samples=10, seed=0)
            assert ds.name == "synthetic-cifar10"

    def test_unknown_rejected(self):
        with pytest.raises(WorkloadError):
            build_dataset("imagenet")

    def test_overrides_forwarded(self):
        ds = build_dataset("agnews", samples=15, sequence_length=5, seed=0)
        assert len(ds) == 15
        assert ds.sample_shape[0] == 5


@given(
    fraction=st.floats(0.01, 1.0),
    n=st.integers(5, 200),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_property_subset_size(fraction, n, seed):
    rng = np.random.default_rng(0)
    ds = Dataset("d", rng.normal(size=(n, 2)), rng.integers(2, size=n), 2)
    sub = ds.subset(fraction, rng=seed)
    assert 1 <= len(sub) <= n
    assert len(sub) == max(1, int(n * fraction))


@given(batch=st.integers(1, 64), n=st.integers(1, 100))
@settings(max_examples=40, deadline=None)
def test_property_batches_partition(batch, n):
    rng = np.random.default_rng(0)
    ds = Dataset("d", rng.normal(size=(n, 2)), rng.integers(2, size=n), 2)
    chunks = list(ds.batches(batch, rng=1))
    assert sum(len(x) for x, _ in chunks) == n
    assert all(len(x) <= batch for x, _ in chunks)
