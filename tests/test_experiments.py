"""Tests for the experiment harness (fast experiments only; the tuning-run
experiments are exercised end to end by benchmarks/)."""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    ExperimentContext,
    edgetune_capabilities,
    figure_01_counters,
    figure_02_model_hparams,
    figure_04_gpus,
    figure_05_cpu_cores,
    figure_06_pipeline,
    figure_10_search_flow,
    figure_15_emulation_error,
    render_table,
    save_table,
    table_01_workloads,
    table_02_features,
)


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(seed=7, fast=True)


class TestRegistry:
    def test_all_paper_targets_present(self):
        paper_targets = {
            "table1", "table2", "fig01", "fig02", "fig03", "fig04",
            "fig05", "fig06", "fig10", "fig12", "fig13", "fig14",
            "fig15", "fig16", "fig17",
        }
        ablations = {"ablation_onefold", "ablation_cache", "ablation_eta",
                     "ablation_warmstart"}
        extensions = {"traffic_slo"}
        assert set(ALL_EXPERIMENTS) == paper_targets | ablations | extensions

    def test_context_targets(self):
        full = ExperimentContext(fast=False)
        fast = ExperimentContext(fast=True)
        assert full.target_for("IC") == 0.8
        assert fast.target_for("IC") < full.target_for("IC")
        assert full.comparison_target_for("IC") == 0.8
        assert fast.comparison_target_for("IC") == 0.8


class TestFastExperiments:
    def test_table1_rows(self, ctx):
        result = table_01_workloads(ctx)
        assert len(result.rows) == 4
        assert result.column("id") == ["IC", "SR", "NLP", "OD"]

    def test_table2_edgetune_row_derived(self, ctx):
        capabilities = edgetune_capabilities()
        assert all(capabilities.values())
        result = table_02_features(ctx)
        assert len(result.rows) == 8  # 7 related systems + EdgeTune

    def test_fig01_counter_structure(self, ctx):
        result = figure_01_counters(ctx)
        assert len(result.rows) == 22
        cpu = [r for r in result.rows if r["category"] == "cpu"]
        assert all(0.8 <= r["ratio"] <= 1.3 for r in cpu)

    def test_fig02_monotone(self, ctx):
        result = figure_02_model_hparams(ctx)
        throughput = result.column("inference_throughput_sps")
        assert throughput == sorted(throughput, reverse=True)

    def test_fig04_degradation(self, ctx):
        result = figure_04_gpus(ctx)
        small = {r["gpus"]: r for r in result.rows if r["batch"] == 32}
        assert small[8]["runtime_m"] > small[1]["runtime_m"]

    def test_fig05_energy_tradeoff(self, ctx):
        result = figure_05_cpu_cores(ctx)
        single = {r["cores"]: r for r in result.rows if r["batch"] == 1}
        assert single[4]["energy_per_img_j"] > single[1]["energy_per_img_j"]

    def test_fig06_containment(self, ctx):
        result = figure_06_pipeline(ctx)
        stalls = [r for r in result.rows if r["label"].startswith("stall:")]
        assert not stalls

    def test_fig10_three_algorithms(self, ctx):
        result = figure_10_search_flow(ctx)
        assert {r["algorithm"] for r in result.rows} == {
            "grid", "random", "bohb"
        }

    def test_fig15_error_bounded(self, ctx):
        result = figure_15_emulation_error(ctx)
        rows = {r["metric"]: r for r in result.rows}
        assert rows["throughput"]["p50"] <= 25.0
        assert rows["energy"]["p50"] <= 25.0


class TestReporting:
    def test_render_contains_all_rows(self, ctx):
        result = table_01_workloads(ctx)
        text = render_table(result)
        for workload_id in ("IC", "SR", "NLP", "OD"):
            assert workload_id in text
        assert result.title in text

    def test_save_writes_file(self, ctx, tmp_path):
        result = table_01_workloads(ctx)
        path = save_table(result, tmp_path)
        with open(path) as handle:
            assert "table1" in handle.read()

    def test_result_helpers(self, ctx):
        result = table_01_workloads(ctx)
        assert result.column("model")[0] == "resnet"
        result.note("extra")
        assert "extra" in result.notes
