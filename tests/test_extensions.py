"""Tests for the extension features: serialization, median stopping,
deployment planner."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SearchSpaceError, ShapeError
from repro.hardware import DeploymentPlanner, Emulator
from repro.nn import (
    load_model,
    load_state_dict,
    save_model,
    state_dict,
)
from repro.nn.models import build_resnet
from repro.search import (
    MedianStoppingScheduler,
    RandomSearcher,
    TrialReport,
)
from repro.space import Float, ParameterSpace


class TestSerialization:
    def test_roundtrip_preserves_outputs(self, tmp_path):
        model = build_resnet((3, 8, 8), 10, seed=1)
        inputs = np.random.default_rng(0).normal(size=(4, 3, 8, 8))
        expected = model.forward(inputs)
        path = str(tmp_path / "weights.npz")
        save_model(model, path)
        fresh = build_resnet((3, 8, 8), 10, seed=99)  # different init
        load_model(fresh, path)
        np.testing.assert_allclose(fresh.forward(inputs), expected)

    def test_state_dict_copies(self):
        model = build_resnet((3, 8, 8), 10, seed=1)
        state = state_dict(model)
        first_key = next(iter(state))
        state[first_key][...] = 0.0
        # The model's live weights are untouched.
        assert model.parameters()[0].value.any()

    def test_mismatched_architecture_rejected(self):
        deep = build_resnet((3, 8, 8), 10, num_layers=50, seed=1)
        shallow = build_resnet((3, 8, 8), 10, num_layers=18, seed=1)
        with pytest.raises(ShapeError):
            load_state_dict(shallow, state_dict(deep))

    def test_mismatched_shape_rejected(self):
        wide = build_resnet((3, 8, 8), 10, width=48, seed=1)
        narrow = build_resnet((3, 8, 8), 10, width=32, seed=1)
        with pytest.raises(ShapeError):
            load_state_dict(narrow, state_dict(wide))


class TestMedianStopping:
    def space(self):
        return ParameterSpace([Float("x", 0.0, 1.0)])

    def drive(self, scheduler, objective):
        history = []
        while True:
            trial = scheduler.next_trial()
            if trial is None:
                assert scheduler.finished
                break
            score = objective(trial.configuration)
            scheduler.report(TrialReport(trial=trial, score=score))
            history.append((trial, score))
            assert len(history) < 2000
        return history

    def test_prunes_bad_trials(self):
        space = self.space()
        scheduler = MedianStoppingScheduler(
            space, RandomSearcher(space, seed=1), num_trials=12,
            max_fidelity=8, seed=1,
        )
        history = self.drive(
            scheduler, lambda c: (c["x"] - 0.5) ** 2
        )
        # Some trials reach the top fidelity, many are pruned earlier.
        top = [t for t, _ in history if t.fidelity == 8]
        assert 0 < len(top) < 12

    def test_survivors_are_better_than_median(self):
        space = self.space()
        scheduler = MedianStoppingScheduler(
            space, RandomSearcher(space, seed=2), num_trials=10,
            max_fidelity=4, seed=2,
        )
        history = self.drive(scheduler, lambda c: c["x"])
        rung0 = [(t, s) for t, s in history if t.rung == 0]
        survivors = {t.trial_id for t, _ in history if t.rung == 1}
        scores = [s for _, s in rung0]
        median = sorted(scores)[len(scores) // 2]
        for trial, score in rung0:
            if trial.trial_id in survivors:
                assert score <= median + 1e-9

    def test_every_trial_reported_once_per_rung(self):
        space = self.space()
        scheduler = MedianStoppingScheduler(
            space, RandomSearcher(space, seed=3), num_trials=6,
            max_fidelity=4, seed=3,
        )
        history = self.drive(scheduler, lambda c: c["x"])
        seen = {}
        for trial, _ in history:
            key = (trial.trial_id, trial.rung)
            assert key not in seen
            seen[key] = True

    def test_invalid_arguments(self):
        space = self.space()
        with pytest.raises(SearchSpaceError):
            MedianStoppingScheduler(
                space, RandomSearcher(space, seed=0), num_trials=0
            )


class TestDeploymentPlanner:
    FLOPS = 25_000
    PARAMS = 12_000

    def test_unconstrained_plan_covers_all_devices(self):
        planner = DeploymentPlanner()
        plan = planner.plan(self.FLOPS, self.PARAMS)
        assert plan.feasible
        assert {o.device for o in plan.options} == {
            "armv7", "raspberrypi3b", "i7nuc"
        }

    def test_energy_preference_sorts_ascending(self):
        plan = DeploymentPlanner().plan(self.FLOPS, self.PARAMS,
                                        prefer="energy")
        energies = [o.energy_per_sample_j for o in plan.options]
        assert energies == sorted(energies)

    def test_throughput_preference_sorts_descending(self):
        plan = DeploymentPlanner().plan(self.FLOPS, self.PARAMS,
                                        prefer="throughput")
        throughputs = [o.throughput_sps for o in plan.options]
        assert throughputs == sorted(throughputs, reverse=True)

    def test_slo_filters(self):
        planner = DeploymentPlanner()
        plan = planner.plan(
            self.FLOPS, self.PARAMS, min_throughput_sps=5.0,
            max_energy_per_sample_j=1.0,
        )
        for option in plan.options:
            assert option.throughput_sps >= 5.0
            assert option.energy_per_sample_j <= 1.0

    def test_infeasible_slo(self):
        plan = DeploymentPlanner().plan(
            self.FLOPS, self.PARAMS, min_throughput_sps=1e9
        )
        assert not plan.feasible
        assert plan.best is None

    def test_slo_met_by_fast_device_only(self):
        """A tight throughput SLO should exclude the slow ARM boards."""
        plan = DeploymentPlanner().plan(
            self.FLOPS, self.PARAMS, min_throughput_sps=20.0,
            prefer="throughput",
        )
        if plan.feasible:
            assert all(o.device == "i7nuc" for o in plan.options)

    def test_invalid_preference(self):
        with pytest.raises(ConfigurationError):
            DeploymentPlanner().plan(self.FLOPS, self.PARAMS,
                                     prefer="latency")

    def test_device_subset(self):
        planner = DeploymentPlanner(devices=["armv7"])
        plan = planner.plan(self.FLOPS, self.PARAMS)
        assert {o.device for o in plan.options} == {"armv7"}
