"""Advisor-path resilience: circuit breaker, client retries under
injected connection faults, and server tolerance for hostile frames."""

import socket
import threading

import pytest

from repro import faults
from repro.advisor import (
    AdvisorClient,
    AdvisorServer,
    CircuitBreaker,
    KnowledgeBase,
)
from repro.advisor.resilience import CLOSED, HALF_OPEN, OPEN
from repro.advisor.server import MAX_LINE_BYTES
from repro.errors import AdvisorError
from repro.storage import TrialDatabase


@pytest.fixture(autouse=True)
def clean_faults():
    faults.reset()
    yield
    faults.reset()


@pytest.fixture
def server():
    database = TrialDatabase()
    from tests.test_advisor_kb import index

    index(KnowledgeBase(database))
    server = AdvisorServer(database, port=0)
    thread = threading.Thread(target=server.serve_until_drained,
                              daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.initiate_drain()
        thread.join(timeout=5.0)


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=10.0,
                                 clock=lambda: clock[0])
        assert breaker.state == CLOSED
        for _ in range(2):
            breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_half_open_probe_then_close(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0,
                                 clock=lambda: clock[0])
        breaker.record_failure()
        assert not breaker.allow()
        clock[0] = 5.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe is admitted
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0,
                                 clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 5.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock[0] = 9.9
        assert not breaker.allow()  # full cool-down restarts
        clock[0] = 10.0
        assert breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class TestClientRetries:
    def test_retries_through_injected_drops(self, server):
        # Every first attempt drops the connection; the retry succeeds
        # (until_attempt defaults to 1).
        faults.configure("seed=2;advisor.drop=1.0", propagate=False)
        with AdvisorClient(port=server.port, backoff_s=0.001) as client:
            response = client.ping()
        assert response["ok"]

    def test_retries_through_injected_garbage(self, server):
        faults.configure("seed=2;advisor.garbage=1.0", propagate=False)
        with AdvisorClient(port=server.port, backoff_s=0.001) as client:
            response = client.ask("IC", target_accuracy=0.8)
        assert response["ok"]

    def test_retry_budget_exhaustion_raises(self, server):
        # Faults on every attempt (until_attempt=99) defeat the retries.
        faults.configure("seed=2;advisor.garbage=1.0:99", propagate=False)
        with AdvisorClient(port=server.port, retries=1,
                           backoff_s=0.001) as client:
            with pytest.raises(AdvisorError, match="malformed"):
                client.ping()

    def test_try_ask_returns_none_on_failure(self):
        # Nothing listens on this port: try_ask degrades to cold-start.
        client = AdvisorClient(port=1, timeout_s=0.1, retries=0)
        assert client.try_ask("IC") is None

    def test_breaker_fails_fast_once_open(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=60.0)
        client = AdvisorClient(port=1, timeout_s=0.1, retries=0,
                               backoff_s=0.001, breaker=breaker)
        for _ in range(2):
            with pytest.raises(AdvisorError):
                client.request("ping")
        assert breaker.state == OPEN
        with pytest.raises(AdvisorError, match="circuit is open"):
            client.request("ping")

    def test_breaker_closes_after_recovery(self, server):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0,
                                 clock=lambda: clock[0])
        breaker.record_failure()  # as if the server had been down
        client = AdvisorClient(port=server.port, retries=0,
                               backoff_s=0.001, breaker=breaker)
        with pytest.raises(AdvisorError, match="circuit is open"):
            client.request("ping")
        clock[0] = 5.0  # cool-down elapsed: half-open probe goes through
        assert client.ping()["ok"]
        assert breaker.state == CLOSED
        client.close()


class TestServerTolerance:
    def test_garbage_bytes_get_error_response_and_server_survives(
        self, server
    ):
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=5.0) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"\x00\xfe{{{not json at all\n")
            line = reader.readline()
            assert b'"ok": false' in line
            # Same connection still answers well-formed requests.
            sock.sendall(b'{"op": "ping"}\n')
            assert b'"pong": true' in reader.readline()
        # And other clients are unaffected.
        with AdvisorClient(port=server.port) as client:
            assert client.ping()["ok"]

    def test_oversized_line_is_rejected(self, server):
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=5.0) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"x" * (MAX_LINE_BYTES + 10) + b"\n")
            line = reader.readline()
            assert b"too long" in line
            # The connection is dropped (stream integrity is gone)...
            assert reader.readline() == b""
        # ...but the server keeps serving new connections.
        with AdvisorClient(port=server.port) as client:
            assert client.ping()["ok"]

    def test_internal_error_becomes_error_response(self, server):
        def explode(*args, **kwargs):
            raise RuntimeError("kb meltdown")

        server.kb.query = explode
        errors_before = server.meters.counter("advisor.errors").value
        with AdvisorClient(port=server.port, retries=0) as client:
            response = client.ask("IC")
        assert not response["ok"]
        assert "internal error" in response["error"]
        assert "kb meltdown" in response["error"]
        assert server.meters.counter("advisor.errors").value \
            == errors_before + 1
        # The handler thread survived; the next request works.
        with AdvisorClient(port=server.port) as client:
            assert client.ping()["ok"]
