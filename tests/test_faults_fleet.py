"""Fleet chaos suite: whole-machine faults under ``$REPRO_FAULTS``.

The containment contract, at host granularity: a machine that dies
mid-lease, a dispatch connection that partitions, or a lease that quietly
goes stale must all drain back into the queue and re-run elsewhere — and
the session's final result must stay bit-identical to a fault-free
single-host run, because every containment path re-executes pure,
seed-driven work and the coordinator merges in strict wave order."""

import os
import socket
import subprocess
import sys
import threading
import time

import pytest

import repro.fleet.host as host_module
from repro import faults
from repro.errors import FleetError
from repro.faults.plan import CRASH_EXIT_CODE
from repro.fleet.client import FleetClient
from repro.fleet.host import HostPool, RemoteHost
from repro.fleet.server import FleetServer
from repro.service import (
    JobQueue, SessionCoordinator, SessionSpec, SessionStore,
)
from repro.service.sessions import S_DONE
from repro.storage import TrialDatabase

from tests.test_fleet import SPEC, fingerprint, single_host_reference


@pytest.fixture(autouse=True)
def clean_faults():
    faults.reset()
    yield
    faults.reset()


def run_fleet_session(tmp_path, name, hosts=2, lease_ttl_s=1.0,
                      machine_ttl_s=5.0, in_process=False,
                      **spec_overrides):
    """One session through a real fleet; returns (result, session_id,
    database) with the database left open for assertions."""
    fleet_dir = tmp_path / name
    fleet_dir.mkdir()
    database = TrialDatabase(str(fleet_dir / "hub.sqlite"))
    spec = dict(SPEC, **spec_overrides)
    session_id = SessionStore(database).create(SessionSpec(**spec))
    server = FleetServer(
        database, port=0, lease_ttl_s=lease_ttl_s,
        machine_ttl_s=machine_ttl_s,
    )
    serve_thread = threading.Thread(
        target=server.serve_until_drained, daemon=True
    )
    serve_thread.start()
    server.start_janitor(interval_s=0.2)
    if in_process:
        # In-process hosts: same protocol over real sockets, but the
        # test can monkeypatch their execution path.
        members = [
            RemoteHost(f"machine-{i + 1}", "127.0.0.1", server.port)
            for i in range(hosts)
        ]
        stop = threading.Event()
        threads = [
            threading.Thread(
                target=member.run_forever, kwargs={"stop_event": stop},
                daemon=True,
            )
            for member in members
        ]
        for thread in threads:
            thread.start()
        try:
            (result,) = server.run_sessions(
                drain=True, poll_interval_s=0.02
            )
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=5.0)
            for member in members:
                member.close()
    else:
        members = None
        with HostPool("127.0.0.1", server.port, str(fleet_dir),
                      hosts=hosts):
            (result,) = server.run_sessions(
                drain=True, poll_interval_s=0.02
            )
    server.initiate_drain()
    serve_thread.join(timeout=5.0)
    return result, session_id, database, members


@pytest.mark.slow
class TestDeadHostChaos:
    def test_host_killed_mid_lease_session_completes_identically(
        self, tmp_path
    ):
        reference = fingerprint(single_host_reference())
        # Trial 2's first attempt hard-kills whichever machine leased it
        # (``os._exit``: heartbeats, extender and all die with it).  The
        # supervisor respawns the machine; the orphaned lease expires and
        # the retry runs clean.
        faults.configure("seed=11;fleet.dead_host=1.0@2")
        result, session_id, database, _ = run_fleet_session(
            tmp_path, "deadhost"
        )
        try:
            assert fingerprint(result) == reference
            assert SessionStore(database).get(session_id).state == S_DONE
            queue = JobQueue(database)
            victim = queue.get(session_id, 2)
            assert victim.attempts >= 2
            history = " ".join(
                entry["error"] for entry in victim.history()
            )
            assert ("lease expired" in history
                    or "host declared dead" in history)
            assert queue.dead_letter_count(session_id) == 0
        finally:
            database.close()


@pytest.mark.slow
class TestPartitionChaos:
    def test_partitioned_hosts_reconnect_and_finish_identically(
        self, tmp_path
    ):
        reference = fingerprint(single_host_reference())
        # ~15% of dispatch requests lose their connection mid-request
        # (first attempt only); the client's reconnect-resync retry path
        # must make the whole fleet run invisible to the result.
        faults.configure("seed=11;fleet.partition=0.15")
        result, session_id, database, _ = run_fleet_session(
            tmp_path, "partition"
        )
        try:
            assert fingerprint(result) == reference
            assert SessionStore(database).get(session_id).state == S_DONE
        finally:
            database.close()

    def test_client_reconnect_resync_after_severed_socket(self):
        """Deterministic close-up of the retry path: every request's
        first attempt is severed; the reconnect must serve attempt 2."""
        faults.configure("seed=1;fleet.partition=1.0", propagate=False)
        with TrialDatabase() as database:
            server = FleetServer(database, port=0)
            thread = threading.Thread(
                target=server.serve_until_drained, daemon=True
            )
            thread.start()
            try:
                with FleetClient("127.0.0.1", server.port) as client:
                    response = client.request("ping")
                assert response["ok"] and response["pong"]
                assert faults.get_plan().fired["fleet.partition"] >= 1
            finally:
                server.initiate_drain()
                thread.join(timeout=5.0)

    def test_partition_with_no_retries_surfaces_fleet_error(self):
        faults.configure("seed=1;fleet.partition=1.0", propagate=False)
        with TrialDatabase() as database:
            server = FleetServer(database, port=0)
            thread = threading.Thread(
                target=server.serve_until_drained, daemon=True
            )
            thread.start()
            try:
                client = FleetClient(
                    "127.0.0.1", server.port, retries=0
                )
                with pytest.raises(FleetError):
                    client.request("ping")
                client.close()
            finally:
                server.initiate_drain()
                thread.join(timeout=5.0)


@pytest.mark.slow
class TestStaleLeaseChaos:
    def test_stale_lease_expires_and_zombie_result_rejected(
        self, tmp_path, monkeypatch
    ):
        """One trial's host silently stops extending its lease while the
        trial (artificially slowed) still runs.  The lease ages out, the
        job re-runs cleanly elsewhere, and the zombie's late ``complete``
        is rejected by the ownership protocol."""
        reference = fingerprint(single_host_reference())
        faults.configure("seed=11;fleet.stale_lease=1.0@2",
                         propagate=False)
        real_evaluate = host_module.evaluate_trial
        slowed = threading.Event()

        def slow_evaluate(task, **kwargs):
            # First execution of trial 2 outlives its (unextended) lease.
            if task.trial_id == 2 and not slowed.is_set():
                slowed.set()
                time.sleep(2.5)
            return real_evaluate(task, **kwargs)

        monkeypatch.setattr(host_module, "evaluate_trial", slow_evaluate)
        result, session_id, database, members = run_fleet_session(
            tmp_path, "stale", in_process=True, lease_ttl_s=0.8,
        )
        try:
            assert slowed.is_set()
            assert fingerprint(result) == reference
            assert SessionStore(database).get(session_id).state == S_DONE
            queue = JobQueue(database)
            victim = queue.get(session_id, 2)
            assert victim.attempts >= 2
            assert "lease expired" in " ".join(
                entry["error"] for entry in victim.history()
            )
            # The zombie's completion was rejected: exactly one accepted
            # completion per trial across the whole fleet.
            assert sum(m.jobs_done for m in members) == len(result.trials)
        finally:
            database.close()


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _reference_summary():
    """The stored result summary of a clean single-host run — the same
    shape the hub persists, so dict-vs-dict comparison is exact."""
    with TrialDatabase() as database:
        session_id = SessionStore(database).create(SessionSpec(**SPEC))
        SessionCoordinator(database, session_id, workers=0).run()
        return SessionStore(database).get(session_id).result


@pytest.mark.slow
class TestReconnectStormChaos:
    def test_reconnect_storm_session_completes_identically(self, tmp_path):
        reference = fingerprint(single_host_reference())
        # Every dispatch request first tears its connection down and
        # rebuilds it — a hub flapping in and out of reach.  The clean
        # reconnect path (re-handshake per request) must stay invisible
        # to the result.
        faults.configure("seed=11;fleet.reconnect_storm=1.0")
        result, session_id, database, _ = run_fleet_session(
            tmp_path, "storm"
        )
        try:
            assert fingerprint(result) == reference
            assert SessionStore(database).get(session_id).state == S_DONE
        finally:
            database.close()


@pytest.mark.slow
class TestHubCrashChaos:
    # The result fields that must survive a hub kill -9 bit-for-bit
    # (everything except deployment bookkeeping like worker counts).
    RESULT_KEYS = (
        "num_trials", "failed_trials", "best_accuracy", "best_score",
        "best_configuration", "tuning_runtime_s", "tuning_energy_j",
        "stall_s",
    )

    def test_hub_killed_mid_run_restart_completes_identically(
        self, tmp_path
    ):
        """The tentpole end to end: the coordinator hub is SIGKILLed
        mid-campaign (first ``complete`` of job 2, before the write), a
        fresh hub process is started over the same database, and the
        fenced/epoch/replay machinery heals the fleet to a result
        bit-identical to a clean single-host run."""
        reference = _reference_summary()
        db_path = str(tmp_path / "hub.sqlite")
        with TrialDatabase(db_path) as database:
            session_id = SessionStore(database).create(SessionSpec(**SPEC))
        port = _free_port()
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH", "")) if p
        )
        cmd = [
            sys.executable, "-m", "repro", "fleet", "serve",
            "--db", db_path, "--port", str(port), "--drain",
            "--lease-ttl", "2.0",
        ]
        # The fault plan reaches ONLY the hub (via its environment): die
        # on the first epoch-1 complete of job 2.  The restarted hub
        # draws epoch 2, so the same site never fires again.
        hub_env = dict(env, REPRO_FAULTS="seed=1;fleet.hub_crash=1.0@1:2")
        first = subprocess.Popen(
            cmd, env=hub_env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            with HostPool("127.0.0.1", port, str(tmp_path), hosts=2):
                assert first.wait(timeout=240) == CRASH_EXIT_CODE
                second = subprocess.Popen(
                    cmd, env=env,
                    stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
                )
                try:
                    assert second.wait(timeout=240) == 0
                except Exception:
                    second.kill()
                    raise
        finally:
            if first.poll() is None:
                first.kill()
        with TrialDatabase(db_path) as database:
            record = SessionStore(database).get(session_id)
            assert record.state == S_DONE
            summary = record.result
            assert (
                {key: summary[key] for key in self.RESULT_KEYS}
                == {key: reference[key] for key in self.RESULT_KEYS}
            )
            # The second incarnation recorded the restart.
            from repro.fleet.registry import HubState, MachineRegistry

            assert HubState(database).current_epoch() == 2
            assert MachineRegistry(database).stats().get(
                "hub.restarts"
            ) == 1.0
