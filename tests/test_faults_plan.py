"""The fault-injection framework itself: spec grammar, determinism,
activation, and the provably-zero-cost disabled path."""

import math
import os
import subprocess
import sys

import pytest

from repro import faults
from repro.errors import InjectedFault
from repro.faults.plan import FaultPlan, FaultRule, _uniform


@pytest.fixture(autouse=True)
def clean_faults():
    faults.reset()
    yield
    faults.reset()


class TestSpecGrammar:
    def test_parse_full_entry(self):
        plan = FaultPlan.parse(
            "seed=42;worker.crash=0.5;worker.hang=1.0:2:2.5;"
            "worker.fail=0.3@17"
        )
        assert plan.seed == 42
        assert plan.rules["worker.crash"] == FaultRule(
            "worker.crash", 0.5
        )
        assert plan.rules["worker.hang"] == FaultRule(
            "worker.hang", 1.0, until_attempt=2, param=2.5
        )
        assert plan.rules["worker.fail"].only_key == "17"

    def test_roundtrip_is_stable(self):
        spec = "seed=7;storage.io=0.05;worker.hang=1:3:2.5"
        plan = FaultPlan.parse(spec)
        again = FaultPlan.parse(plan.to_spec())
        assert again.to_spec() == plan.to_spec()
        assert again.seed == plan.seed
        assert again.rules == plan.rules

    def test_rejects_unknown_site(self):
        with pytest.raises(InjectedFault, match="unknown fault site"):
            FaultPlan.parse("seed=1;coffee.machine=0.5")

    def test_rejects_bad_probability(self):
        with pytest.raises(InjectedFault, match="probability"):
            FaultPlan.parse("worker.fail=1.5")

    def test_rejects_malformed_entry(self):
        with pytest.raises(InjectedFault, match="malformed"):
            FaultPlan.parse("worker.fail")


class TestDeterminism:
    def test_uniform_is_stable_across_instances(self):
        a = _uniform(7, "worker.crash", 12)
        b = _uniform(7, "worker.crash", 12)
        assert a == b
        assert 0.0 <= a < 1.0
        assert _uniform(8, "worker.crash", 12) != a

    def test_same_spec_same_schedule(self):
        spec = "seed=13;worker.fail=0.4"
        decisions = [
            [FaultPlan.parse(spec).should("worker.fail", key=k)
             for k in range(50)]
            for _ in range(2)
        ]
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])

    def test_attempt_gating_makes_faults_retryable(self):
        plan = FaultPlan.parse("seed=1;worker.fail=1.0")
        assert plan.should("worker.fail", key=5, attempt=1)
        assert not plan.should("worker.fail", key=5, attempt=2)

    def test_until_attempt_models_poison(self):
        plan = FaultPlan.parse("seed=1;worker.fail=1.0:99")
        assert all(
            plan.should("worker.fail", key=5, attempt=a)
            for a in range(1, 10)
        )

    def test_only_key_restricts_rule(self):
        plan = FaultPlan.parse("seed=1;worker.fail=1.0@3")
        assert plan.should("worker.fail", key=3)
        assert not plan.should("worker.fail", key=4)

    def test_keyless_sites_use_call_counter(self):
        spec = "seed=3;storage.io=0.5"
        first = [FaultPlan.parse(spec).should("storage.io")
                 for _ in range(1)]
        plan = FaultPlan.parse(spec)
        sequence = [plan.should("storage.io") for _ in range(40)]
        assert sequence[0] == first[0]
        assert any(sequence) and not all(sequence)

    def test_fired_counters(self):
        plan = FaultPlan.parse("seed=1;worker.fail=1.0")
        plan.should("worker.fail", key=1)
        plan.should("worker.fail", key=2)
        plan.should("worker.fail", key=2, attempt=2)  # gated, no fire
        assert plan.fired == {"worker.fail": 2}
        assert plan.fired_total() == 2


class TestActions:
    def test_fail_site_raises_injected_fault(self):
        plan = FaultPlan.parse("seed=1;worker.fail=1.0")
        with pytest.raises(InjectedFault, match="worker.fail"):
            plan.fire("worker.fail", key=1)

    def test_storage_site_raises_sqlite_error(self):
        import sqlite3

        plan = FaultPlan.parse("seed=1;storage.io=1.0")
        with pytest.raises(sqlite3.OperationalError, match="disk I/O"):
            plan.fire("storage.io")

    def test_corrupt_nan(self):
        plan = FaultPlan.parse("seed=1;trainer.nan=1.0")
        assert math.isnan(plan.corrupt_nan("trainer.nan", 0.5, key=1))
        off = FaultPlan.parse("seed=1;trainer.nan=0.0")
        assert off.corrupt_nan("trainer.nan", 0.5, key=1) == 0.5


class TestFacade:
    def test_disabled_hooks_are_noops(self):
        assert not faults.enabled()
        faults.fault_point("worker.crash", key=1)
        assert faults.should("advisor.drop") is False
        assert faults.corrupt_nan("trainer.nan", 1.25) == 1.25

    def test_configure_activates_and_propagates(self):
        faults.configure("seed=5;worker.fail=1.0")
        assert faults.enabled()
        assert os.environ[faults.ENV_VAR] == "seed=5;worker.fail=1"
        with pytest.raises(InjectedFault):
            faults.fault_point("worker.fail", key=1)
        faults.reset()
        assert not faults.enabled()
        assert faults.ENV_VAR not in os.environ

    def test_configure_without_propagation(self):
        faults.configure("seed=5;worker.fail=1.0", propagate=False)
        assert faults.enabled()
        assert faults.ENV_VAR not in os.environ

    def test_disabled_run_never_imports_injector(self):
        """The containment hot paths must not even import the injector
        machinery when REPRO_FAULTS is unset."""
        env = {k: v for k, v in os.environ.items()
               if k != faults.ENV_VAR}
        env["PYTHONPATH"] = "src"
        code = (
            "import sys\n"
            "import repro.service.worker\n"
            "import repro.service.coordinator\n"
            "import repro.nn.trainer\n"
            "import repro.storage.database\n"
            "import repro.advisor.client\n"
            "assert 'repro.faults.plan' not in sys.modules, 'injector leaked'\n"
            "assert 'repro.faults' in sys.modules\n"
            "print('clean')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert result.returncode == 0, result.stderr
        assert "clean" in result.stdout

    def test_env_bootstrap_activates_in_fresh_process(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env[faults.ENV_VAR] = "seed=9;worker.fail=1.0"
        code = (
            "from repro import faults\n"
            "assert faults.enabled()\n"
            "assert faults.get_plan().seed == 9\n"
            "print('armed')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert result.returncode == 0, result.stderr
        assert "armed" in result.stdout
