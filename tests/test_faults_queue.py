"""Retry exhaustion and the dead-letter quarantine (jobs table v5)."""

from repro.service import DeadLetter, JobQueue
from repro.service.queue import FAILED, QUEUED, backoff_delay
from repro.storage import TrialDatabase


def drive_to_exhaustion(queue, session="s1", trial=1, max_attempts=3,
                        start=1000.0):
    """Lease+fail a job through every attempt; returns the fail times."""
    queue.enqueue(session, trial, "{}", max_attempts=max_attempts,
                  now=start)
    now = start
    fail_times = []
    for attempt in range(1, max_attempts + 1):
        now += backoff_delay(attempt - 1) + 1.0
        job = queue.lease("w1", ttl_s=30.0, now=now)
        assert job is not None and job.attempts == attempt
        now += 0.5
        assert queue.fail(job.id, "w1", f"boom {attempt}", now=now)
        fail_times.append(now)
    return fail_times


class TestRetryExhaustion:
    def test_exhausted_job_fails_and_quarantines_exactly_once(self):
        db = TrialDatabase()
        queue = JobQueue(db)
        drive_to_exhaustion(queue)
        job = queue.get("s1", 1)
        assert job.state == FAILED
        assert job.attempts == job.max_attempts == 3
        letters = queue.dead_letters("s1")
        assert len(letters) == 1
        letter = letters[0]
        assert isinstance(letter, DeadLetter)
        assert letter.trial_id == 1 and letter.attempts == 3
        assert letter.error == "boom 3"
        assert queue.dead_letter_count() == 1
        assert queue.dead_letter_count("other") == 0

    def test_error_history_is_complete_and_monotonic(self):
        db = TrialDatabase()
        queue = JobQueue(db)
        fail_times = drive_to_exhaustion(queue)
        history = queue.get("s1", 1).history()
        assert [entry["attempt"] for entry in history] == [1, 2, 3]
        assert [entry["error"] for entry in history] == [
            "boom 1", "boom 2", "boom 3"
        ]
        stamps = [entry["at"] for entry in history]
        assert stamps == sorted(stamps) == fail_times
        # The quarantine row carries the same history.
        assert queue.dead_letters("s1")[0].error_history == history

    def test_backoff_timestamps_monotonically_increase(self):
        db = TrialDatabase()
        queue = JobQueue(db)
        queue.enqueue("s1", 1, "{}", max_attempts=5, now=100.0)
        retry_ats = []
        now = 100.0
        for attempt in range(1, 5):
            now += backoff_delay(attempt - 1) + 0.01
            job = queue.lease("w1", ttl_s=30.0, now=now)
            assert job is not None
            queue.fail(job.id, "w1", "x", now=now)
            retry_ats.append(queue.get("s1", 1).next_retry_at)
        assert retry_ats == sorted(retry_ats)
        assert all(b > a for a, b in zip(retry_ats, retry_ats[1:]))

    def test_fail_after_lease_expiry_is_noop(self):
        db = TrialDatabase()
        queue = JobQueue(db)
        queue.enqueue("s1", 1, "{}", now=100.0)
        job = queue.lease("w1", ttl_s=5.0, now=100.0)
        # The zombie reports after its lease lapsed: rejected, and the
        # job row is untouched (reclaim owns it now).
        assert not queue.fail(job.id, "w1", "late verdict", now=106.0)
        after = queue.get("s1", 1)
        assert after.state == "leased"
        assert after.error is None
        assert after.history() == []

    def test_reclaim_exhaustion_also_quarantines(self):
        db = TrialDatabase()
        queue = JobQueue(db)
        queue.enqueue("s1", 1, "{}", max_attempts=1, now=100.0)
        job = queue.lease("w1", ttl_s=5.0, now=100.0)
        assert job.attempts == 1
        assert queue.reclaim_expired(now=200.0) == 1
        assert queue.get("s1", 1).state == FAILED
        letters = queue.dead_letters("s1")
        assert len(letters) == 1
        assert "lease expired" in letters[0].error
        assert len(letters[0].error_history) == 1


class TestDeadLetterManagement:
    def test_retry_dead_releases_with_clean_slate(self):
        db = TrialDatabase()
        queue = JobQueue(db)
        drive_to_exhaustion(queue)
        assert queue.retry_dead("s1") == 1
        assert queue.dead_letter_count("s1") == 0
        job = queue.get("s1", 1)
        assert job.state == QUEUED
        assert job.attempts == 0
        assert job.error is None
        assert job.history() == []
        # The released job is leasable again immediately.
        assert queue.lease("w2", ttl_s=30.0, now=9999.0) is not None

    def test_retry_dead_single_trial(self):
        db = TrialDatabase()
        queue = JobQueue(db)
        drive_to_exhaustion(queue, trial=1)
        drive_to_exhaustion(queue, trial=2)
        assert queue.retry_dead("s1", trial_id=2) == 1
        assert {l.trial_id for l in queue.dead_letters("s1")} == {1}

    def test_purge_dead_keeps_failed_jobs(self):
        db = TrialDatabase()
        queue = JobQueue(db)
        drive_to_exhaustion(queue)
        assert queue.purge_dead("s1") == 1
        assert queue.dead_letter_count() == 0
        assert queue.get("s1", 1).state == FAILED  # audit trail stays

    def test_last_error_reports_most_recent(self):
        db = TrialDatabase()
        queue = JobQueue(db)
        assert queue.last_error("s1") is None
        drive_to_exhaustion(queue)
        assert queue.last_error("s1") == "boom 3"
