"""Chaos suite: full multi-worker sessions under each fault injector.

The determinism contract under fire: retryable injected faults (crash,
fail, hang, transient I/O) must leave the session result bit-identical to
a fault-free run at the same seed, because retries re-execute seed-driven
work and the coordinator integrates in wave order regardless of timing.
Poison faults (fire on every attempt) must quarantine their jobs and
still let the session complete.
"""

import pytest

from repro import faults
from repro.service import (
    JobQueue,
    SessionCoordinator,
    SessionSpec,
    SessionStore,
)
from repro.service.sessions import S_DONE
from repro.storage import TrialDatabase
from repro.objectives import WORST_SCORE

from tests.test_service_coordinator import fingerprint, make_session


@pytest.fixture(autouse=True)
def clean_faults():
    faults.reset()
    yield
    faults.reset()


def run_session(db, workers=0, trial_timeout_s=None, **spec_overrides):
    session_id, _ = make_session(db, **spec_overrides)
    coordinator = SessionCoordinator(
        db, session_id, workers=workers, poll_interval_s=0.01,
        lease_ttl_s=1.0 if workers else 10.0,
        trial_timeout_s=trial_timeout_s,
    )
    result = coordinator.run()
    return session_id, result, coordinator


def reference_fingerprint(**spec_overrides):
    """The fault-free result every retryable-fault run must reproduce."""
    faults.reset()
    db = TrialDatabase()
    _, result, _ = run_session(db, **spec_overrides)
    return fingerprint(result)


SPEC = dict(max_trials=4, samples=160)


class TestRetryableFaultsAreInvisible:
    def test_worker_fail_injection_matches_fault_free_run(self):
        reference = reference_fingerprint(**SPEC)
        faults.configure("seed=11;worker.fail=0.5", propagate=False)
        db = TrialDatabase()
        session_id, result, _ = run_session(db, **SPEC)
        assert fingerprint(result) == reference
        assert SessionStore(db).get(session_id).state == S_DONE
        # The injector really fired: some jobs needed a second attempt.
        queue = JobQueue(db)
        retried = [job for job in queue.jobs_for(session_id, "done")
                   if job.attempts > 1]
        assert retried
        assert queue.dead_letter_count(session_id) == 0

    def test_storage_io_injection_matches_fault_free_run(self):
        reference = reference_fingerprint(**SPEC)
        faults.configure("seed=11;storage.io=0.05", propagate=False)
        db = TrialDatabase()
        session_id, result, _ = run_session(db, **SPEC)
        assert fingerprint(result) == reference
        assert faults.get_plan().fired["storage.io"] > 0

    def test_worker_hang_contained_by_trial_deadline(self):
        reference = reference_fingerprint(**SPEC)
        faults.configure("seed=11;worker.hang=0.6:1:5", propagate=False)
        db = TrialDatabase()
        session_id, result, _ = run_session(
            db, trial_timeout_s=0.3, **SPEC
        )
        assert fingerprint(result) == reference
        queue = JobQueue(db)
        hung = [job for job in queue.jobs_for(session_id, "done")
                if job.attempts > 1]
        assert hung  # at least one trial overran and was retried
        assert "deadline" in (queue.last_error(session_id) or "")


class TestWorkerCrashChaos:
    def test_two_worker_session_survives_crash_injection(self, tmp_path):
        reference = reference_fingerprint(**SPEC)
        db_path = str(tmp_path / "chaos.sqlite")
        faults.configure("seed=11;worker.crash=0.5")  # exported to env
        try:
            with TrialDatabase(db_path) as db:
                session_id, result, coordinator = run_session(
                    db, workers=2, **SPEC
                )
                assert fingerprint(result) == reference
                assert SessionStore(db).get(session_id).state == S_DONE
                queue = JobQueue(db)
                assert queue.dead_letter_count(session_id) == 0
                # Crashes really happened: leases were reclaimed and/or
                # dead workers respawned.
                meters = coordinator.meters
                assert (
                    meters.counter("leases.reclaimed").value > 0
                    or meters.counter("workers.respawned").value > 0
                )
        finally:
            faults.reset()


class TestNanDivergenceChaos:
    def test_nan_session_completes_with_degraded_records(self):
        faults.configure("seed=3;trainer.nan=0.9", propagate=False)
        db = TrialDatabase()
        session_id, result, _ = run_session(db, **SPEC)
        assert SessionStore(db).get(session_id).state == S_DONE
        diverged = [t for t in result.trials if t.failure is not None]
        assert diverged
        for record in diverged:
            assert "diverged" in record.failure
            assert record.accuracy == 0.0
            assert record.score == WORST_SCORE
            assert record.inference is None  # no tuning of a dead model

    def test_healthy_trial_beats_degraded_incumbent(self):
        faults.configure("seed=3;trainer.nan=0.9", propagate=False)
        db = TrialDatabase()
        _, result, _ = run_session(db, **SPEC)
        healthy = [t for t in result.trials if t.failure is None]
        if healthy:  # seed-dependent; when any trial survives, it wins
            assert result.best_score < WORST_SCORE
            assert result.best_accuracy == max(
                t.accuracy for t in healthy
            )


class TestPoisonQuarantine:
    POISON = "seed=11;worker.fail=0.4:99"

    def test_poison_configs_quarantine_and_session_completes(self):
        faults.configure(self.POISON, propagate=False)
        db = TrialDatabase()
        session_id, result, coordinator = run_session(db, **SPEC)
        record = SessionStore(db).get(session_id)
        assert record.state == S_DONE
        queue = JobQueue(db)
        letters = queue.dead_letters(session_id)
        assert letters  # at 0.4 over every attempt, some trials poison
        assert record.result["dead_letter"] == len(letters)
        assert record.result["failed_trials"] >= len(letters)
        assert coordinator.meters.counter(
            "failures.substituted"
        ).value == len(letters)
        poisoned_ids = {letter.trial_id for letter in letters}
        for trial in result.trials:
            if trial.trial_id in poisoned_ids:
                assert trial.failure is not None
                assert trial.score == WORST_SCORE

    def test_poison_outcome_is_worker_count_independent(self, tmp_path):
        faults.configure(self.POISON)  # exported to env for the pool
        try:
            inline_db = TrialDatabase()
            _, inline_result, _ = run_session(inline_db, **SPEC)

            db_path = str(tmp_path / "poison.sqlite")
            with TrialDatabase(db_path) as pool_db:
                session_id, pool_result, _ = run_session(
                    pool_db, workers=2, **SPEC
                )
                assert fingerprint(pool_result) == fingerprint(inline_result)
                assert (
                    JobQueue(pool_db).dead_letter_count(session_id)
                    == JobQueue(inline_db).dead_letter_count(None)
                )
        finally:
            faults.reset()
