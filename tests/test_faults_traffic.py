"""Chaos: the ``traffic.request_storm`` fault and graceful degradation.

The storm site is decision-only — the replay engine multiplies mid-trace
arrivals itself and *must* degrade gracefully: never raise, never spin,
just shed the excess into the miss counters and report."""

import pytest

from repro import faults
from repro.faults.plan import KNOWN_SITES, FaultPlan
from repro.storage import TrialDatabase
from repro.traffic import (
    SLOSpec,
    build_trace,
    record_replay,
    replay_trace,
    traffic_stats,
)

STORM_SPEC = "seed=7;traffic.request_storm=1.0:1:3"
TRACE = "diurnal:rate=40,duration=20,seed=5"


@pytest.fixture(autouse=True)
def clean_faults():
    faults.reset()
    yield
    faults.reset()


def test_site_is_registered():
    assert "traffic.request_storm" in KNOWN_SITES
    plan = FaultPlan.parse(STORM_SPEC)
    assert plan.rules["traffic.request_storm"].param == 3.0
    assert plan.to_spec() == FaultPlan.parse(plan.to_spec()).to_spec()


def test_storm_multiplies_midtrace_arrivals():
    trace = build_trace(TRACE)
    faults.configure(STORM_SPEC, propagate=False)
    stats = replay_trace(trace, lambda b: 0.004 + 0.0008 * b, max_batch=8)
    # Middle-third requests are tripled: two extra copies each.
    in_window = sum(
        1 for arrival in trace.arrivals_s
        if trace.duration_s / 3.0 <= arrival < 2.0 * trace.duration_s / 3.0
    )
    assert stats.storm_injected == 2 * in_window
    assert stats.requests == len(trace) + stats.storm_injected


def test_storm_is_deterministic():
    trace = build_trace(TRACE)
    faults.configure(STORM_SPEC, propagate=False)
    first = replay_trace(trace, lambda b: 0.004 + 0.0008 * b, max_batch=8)
    second = replay_trace(trace, lambda b: 0.004 + 0.0008 * b, max_batch=8)
    assert first.to_dict() == second.to_dict()


def test_no_storm_without_plan():
    trace = build_trace(TRACE)
    stats = replay_trace(trace, lambda b: 0.004 + 0.0008 * b, max_batch=8)
    assert stats.storm_injected == 0
    assert stats.requests == len(trace)


def test_graceful_degradation_under_storm_overload():
    """A storm against an already-tight deployment must shed and report,
    not raise or simulate an unbounded queue."""
    trace = build_trace(TRACE)
    slo = SLOSpec(deadline_s=0.25)
    faults.configure("seed=7;traffic.request_storm=1.0:1:8",
                     propagate=False)
    # ~24 req/s capacity at batch 1 against 40 req/s stormed to 320.
    stats = replay_trace(
        trace, lambda b: 0.04 + 0.001 * b, max_batch=1, slo=slo
    )
    assert stats.diverged
    assert stats.shed > 0
    assert stats.completed + stats.shed == stats.requests
    assert stats.deadline_misses >= stats.shed
    assert 0.0 < stats.deadline_miss_rate <= 1.0
    # Degradation is *reported*: counters land in the status tables.
    database = TrialDatabase()
    record_replay(database, stats, slo)
    counters = traffic_stats(database)
    assert counters["requests_shed"] == float(stats.shed)
    assert counters["replays_diverged"] == 1.0
    assert counters["storm_injected"] == float(stats.storm_injected)


def test_storm_respects_only_key():
    """A rule keyed to another trace name leaves this replay untouched."""
    trace = build_trace(TRACE)  # name is "diurnal"
    faults.configure(
        "seed=7;traffic.request_storm=1.0:1:3@flash", propagate=False
    )
    stats = replay_trace(trace, lambda b: 0.004 + 0.0008 * b, max_batch=8)
    assert stats.storm_injected == 0
