"""Numeric containment: NaN divergence in training, objective guards."""

import math

import numpy as np
import pytest

from repro import faults
from repro.core.model_server import (
    TrialEvaluation, failure_evaluation,
)
from repro.datasets import make_cifar10
from repro.nn import train_model
from repro.nn.models import get_model_family
from repro.nn.trainer import TrainingResult
from repro.objectives import WORST_SCORE, RatioObjective
from repro.objectives.base import PowerAwareObjective
from repro.telemetry import InferenceMeasurement, TrainingMeasurement


@pytest.fixture(autouse=True)
def clean_faults():
    faults.reset()
    yield
    faults.reset()


def run_training(seed=5):
    dataset = make_cifar10(samples=160, seed=1)
    train, test = dataset.split(0.2, rng=0)
    family = get_model_family("resnet")
    model = family.instantiate(dataset.sample_shape,
                               dataset.num_classes, seed=3)
    return train_model(
        model, family.make_loss(dataset.num_classes), train, test,
        epochs=2, batch_size=32, lr=0.05, seed=seed,
    )


class TestNanContainment:
    def test_injected_nan_is_contained(self):
        faults.configure("seed=1;trainer.nan=1.0", propagate=False)
        result = run_training()
        assert result.diverged
        assert result.accuracy == 0.0
        # Divergence struck the very first batch: no step completed.
        assert result.samples_seen == 0
        assert result.losses == []
        assert result.final_loss is None

    def test_healthy_run_unaffected_by_disabled_faults(self):
        healthy = run_training()
        assert not healthy.diverged
        assert healthy.final_loss is not None
        assert np.isfinite(healthy.final_loss)
        assert healthy.samples_seen > 0

    def test_diverged_evaluation_is_degraded_and_reports_failure(self):
        faults.configure("seed=1;trainer.nan=1.0", propagate=False)
        from repro.core.model_server import TrialTask, evaluate_trial

        task = TrialTask(
            trial_id=0,
            values={"num_layers": 8, "train_batch_size": 32},
            fidelity=1, bracket=0, rung=0,
            epochs=1, data_fraction=0.5, workload_id="IC", seed=7,
            samples=160,
        )
        evaluation, _ = evaluate_trial(task)
        assert evaluation.diverged
        assert evaluation.degraded
        assert "diverged" in evaluation.failure
        assert evaluation.accuracy == 0.0


class TestFinalLoss:
    def test_zero_step_run_has_none_final_loss(self):
        result = TrainingResult(
            accuracy=0.0, losses=[], epochs_run=0, data_fraction=1.0,
            samples_seen=0, batch_size=32, forward_flops_per_sample=0,
            train_forward_flops=0, train_total_flops=0, parameter_count=0,
        )
        assert result.final_loss is None

    def test_failure_evaluation_shape(self):
        evaluation = failure_evaluation(9, "it broke")
        assert isinstance(evaluation, TrialEvaluation)
        assert evaluation.failed and evaluation.degraded
        assert evaluation.failure == "it broke"
        assert evaluation.accuracy == 0.0
        assert evaluation.final_loss is None
        assert evaluation.train_total_flops == 0


def training_measurement(runtime=10.0, energy=100.0):
    return TrainingMeasurement(
        runtime_s=runtime, energy_j=energy, power_w=10.0,
        working_set_bytes=1 << 20, device="titan-server", gpus=1,
    )


def inference_measurement(latency=0.01):
    return InferenceMeasurement(
        batch_latency_s=latency, throughput_sps=100.0,
        energy_per_sample_j=0.01, power_w=1.0,
        working_set_bytes=1 << 16, batch_size=1, cores=1,
        device="armv7",
    )


class TestObjectiveGuards:
    def test_nonfinite_runtime_scores_worst(self):
        objective = RatioObjective("runtime")
        bad = training_measurement(runtime=float("nan"))
        assert objective.score(0.9, bad, inference_measurement()) \
            == WORST_SCORE

    def test_nonfinite_accuracy_scores_worst_not_crash(self):
        objective = RatioObjective("runtime")
        score = objective.score(float("nan"), training_measurement(),
                                inference_measurement())
        assert math.isfinite(score)
        # Accuracy floor applies: a NaN accuracy behaves like the worst
        # possible accuracy, never an exception or a NaN score.
        assert score > 0

    def test_nonfinite_energy_scores_worst_power_aware(self):
        objective = PowerAwareObjective()
        bad = TrainingMeasurement(
            runtime_s=10.0, energy_j=float("inf"), power_w=10.0,
            working_set_bytes=1 << 20, device="titan-server", gpus=1,
        )
        assert objective.score(0.9, bad, None) == WORST_SCORE

    def test_healthy_inputs_unchanged(self):
        objective = RatioObjective("runtime")
        score = objective.score(0.9, training_measurement(),
                                inference_measurement())
        assert math.isfinite(score) and 0 < score < WORST_SCORE
