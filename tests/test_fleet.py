"""End-to-end fleet tests: a real coordinator plus real remote-host
processes (isolated per-machine databases, TCP dispatch only).

The headline contract: a multi-host fleet run is **bit-identical** to the
single-host run of the same spec, because jobs are pure functions of
their task and the coordinator merges results in strict wave order.  On
top of that, artifact-cache federation means a second machine never
cold-runs a trial the fleet has already paid for."""

import json
import threading

import pytest

from repro.fleet.host import HostPool
from repro.fleet.server import FleetServer
from repro.service import SessionCoordinator, SessionSpec, SessionStore
from repro.service.sessions import S_DONE
from repro.storage import TrialDatabase

SPEC = dict(workload="IC", device="armv7", seed=7, samples=160,
            max_trials=6)


def fingerprint(result):
    """Everything that must match between two equivalent runs."""
    return (
        [(t.trial_id, t.score, t.accuracy, t.stall_s) for t in result.trials],
        result.best_configuration,
        result.best_accuracy,
        result.best_score,
        result.tuning_runtime_s,
        result.tuning_energy_j,
        result.stall_s,
    )


def warm_fingerprint(result):
    """Fingerprint minus the inference-pipeline timing components.

    A second session of the same experiment in the same hub database
    finds the inference-tuning cache warm, so trials no longer stall on
    pipelined inference jobs (fleet or not) — scores, accuracies, and
    the chosen configuration must still match exactly."""
    return (
        [(t.trial_id, t.score, t.accuracy) for t in result.trials],
        result.best_configuration,
        result.best_accuracy,
        result.best_score,
    )


def single_host_reference(**overrides):
    spec = dict(SPEC, **overrides)
    with TrialDatabase() as db:
        session_id = SessionStore(db).create(SessionSpec(**spec))
        return SessionCoordinator(db, session_id, workers=0).run()


class Fleet:
    """One coordinator + N remote-host processes, torn down cleanly."""

    def __init__(self, tmp_path, name, hosts=2, num_shards=2,
                 lease_ttl_s=5.0, machine_ttl_s=30.0):
        self.dir = tmp_path / name
        self.dir.mkdir()
        self.db_path = str(self.dir / "hub.sqlite")
        self.database = TrialDatabase(self.db_path)
        self.server = FleetServer(
            self.database, port=0, num_shards=num_shards,
            lease_ttl_s=lease_ttl_s, machine_ttl_s=machine_ttl_s,
        )
        self.hosts = hosts
        self._serve_thread = threading.Thread(
            target=self.server.serve_until_drained, daemon=True
        )
        self.pool = None

    def submit(self, **overrides):
        spec = dict(SPEC, **overrides)
        return SessionStore(self.database).create(SessionSpec(**spec))

    def run(self):
        """Serve all queued sessions through the remote hosts."""
        self._serve_thread.start()
        self.server.start_janitor()
        self.pool = HostPool(
            "127.0.0.1", self.server.port, str(self.dir),
            hosts=self.hosts,
        ).start()
        try:
            return self.server.run_sessions(drain=True)
        finally:
            self.pool.stop()

    def stats(self):
        return self.server.registry.stats()

    def close(self):
        if self.pool is not None:
            self.pool.stop()
        self.server.initiate_drain()
        self._serve_thread.join(timeout=5.0)
        self.database.close()


@pytest.fixture()
def fleet_factory(tmp_path):
    fleets = []

    def build(name, **kwargs):
        fleet = Fleet(tmp_path, name, **kwargs)
        fleets.append(fleet)
        return fleet

    yield build
    for fleet in fleets:
        fleet.close()


@pytest.mark.slow
class TestFleetBitIdentity:
    def test_two_host_run_matches_single_host(self, fleet_factory):
        fleet = fleet_factory("fleet")
        session_id = fleet.submit()
        (result,) = fleet.run()
        assert fingerprint(result) == fingerprint(single_host_reference())
        record = SessionStore(fleet.database).get(session_id)
        assert record.state == S_DONE
        # The work really happened on remote machines: every finished
        # job's lease owner is a ``machine/<worker>`` identity.
        owners = {
            stats["worker"]
            for stats in fleet.server.queue.worker_stats(session_id)
        }
        assert owners
        assert all(owner.startswith("machine-") for owner in owners)
        machines = {m.id for m in fleet.server.registry.list()}
        assert machines == {"machine-1", "machine-2"}

    def test_federation_avoids_cold_reruns(self, fleet_factory, capsys):
        """A second identical session served by *fresh* machine databases
        never cold-runs a trial: every artifact is fetched from the hub
        cache that the first session populated."""
        first = fleet_factory("first")
        first.submit()
        (result_a,) = first.run()
        uploads = first.stats().get("federation.uploads", 0)
        assert uploads > 0  # cold runs were published to the hub
        hits_before = first.stats().get("federation.hits", 0)

        # Same hub, brand-new host databases (a new base dir): the only
        # way the second session's trials short-circuit is through the
        # federation's remote lookup.
        second_dir = first.dir / "fresh-hosts"
        second_dir.mkdir()
        first.submit()
        first.pool = HostPool(
            "127.0.0.1", first.server.port, str(second_dir), hosts=2,
        ).start()
        try:
            (result_b,) = first.server.run_sessions(drain=True)
        finally:
            first.pool.stop()
        assert warm_fingerprint(result_b) == warm_fingerprint(result_a)
        hits_after = first.stats().get("federation.hits", 0)
        assert hits_after > hits_before
        # No new uploads: nothing was cold-run the second time.
        assert first.stats().get("federation.uploads", 0) == uploads

        # The counters are operator-visible through ``service status``.
        from repro.service.__main__ import main as service_main

        first.server.initiate_drain()  # stop the janitor before closing
        first.database.close()  # release before the CLI reopens it
        assert service_main(
            ["status", "--db", first.db_path, "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["fleet"]["federation.hits"] == hits_after
        assert len(payload[0]["machines"]) == 2


@pytest.mark.slow
class TestFleetLiveness:
    def test_host_pool_respawns_dead_hosts(self, fleet_factory):
        fleet = fleet_factory("respawn", hosts=1)
        fleet._serve_thread.start()
        fleet.pool = HostPool(
            "127.0.0.1", fleet.server.port, str(fleet.dir), hosts=1,
        ).start()
        try:
            deadline = 5.0
            import time
            while fleet.pool.alive() < 1 and deadline > 0:
                time.sleep(0.05)
                deadline -= 0.05
            (process,) = fleet.pool._processes
            process.terminate()
            process.join(timeout=5.0)
            deadline = 5.0
            while fleet.pool.alive() < 1 and deadline > 0:
                time.sleep(0.05)
                deadline -= 0.05
            assert fleet.pool.alive() == 1
            respawned = fleet.pool._processes[0]
            assert respawned.name == "machine-1"  # same identity
        finally:
            fleet.pool.stop()
        assert fleet.pool.alive() == 0
        fleet.pool.stop()  # idempotent
