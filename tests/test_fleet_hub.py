"""Hub crash-safety: incarnation epochs, fencing, idempotent replay,
lease resync, and crash recovery of orphaned sessions.

These tests drive :meth:`FleetServer.handle_line` (the documented
unit-test seam) with *two* server incarnations over one database — the
in-process equivalent of ``kill -9``-ing the hub and restarting it.  The
full subprocess SIGKILL choreography lives in
``tests/test_faults_fleet.py``; here every protocol consequence of a
restart is pinned down deterministically:

* the epoch advances monotonically, once per hub start;
* mutation frames carrying a pre-crash epoch are fenced (and told to
  re-register), while frames without an epoch stay trusted;
* a ``complete`` replayed across the crash lands exactly once;
* ``resync`` re-adopts still-held leases under the new epoch and drops
  reclaimed ones;
* ``running`` sessions orphaned by the dead hub are requeued for
  checkpoint resume.
"""

import json

import pytest

from repro.fleet.registry import HubState
from repro.fleet.server import FleetServer
from repro.fleet.wire import pack_bytes
from repro.service import JobQueue, SessionSpec, SessionStore
from repro.service.queue import (
    DONE, LEASED, MAX_HISTORY_ENTRIES, QUEUED,
)
from repro.service.sessions import S_QUEUED, S_RUNNING
from repro.storage import TrialDatabase

from tests.test_fleet import SPEC


def frame(op, **params):
    return json.dumps(dict(params, op=op)).encode()


@pytest.fixture()
def database(tmp_path):
    db = TrialDatabase(str(tmp_path / "hub.sqlite"))
    try:
        yield db
    finally:
        db.close()


def start_hub(database, **kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("num_shards", 1)
    kwargs.setdefault("lease_ttl_s", 5.0)
    return FleetServer(database, **kwargs)


def lease_one(server, machine_id="m1", worker="w0", trial_id=1):
    """Register, enqueue one job on the machine's shard, lease it."""
    shard = server.handle_line(
        frame("register", machine_id=machine_id)
    )["shard"]
    server.queue.enqueue("sess", trial_id, "{}", shard=shard)
    response = server.handle_line(frame(
        "lease", machine_id=machine_id, worker=worker,
        epoch=server.epoch,
    ))
    assert response["ok"] and response["job"] is not None
    return response["job"]


class TestHubEpoch:
    def test_epoch_advances_once_per_incarnation(self, database):
        first = start_hub(database)
        assert first.epoch == 1
        assert first.recovery == {"epoch": 1, "sessions_requeued": 0}
        first.server_close()
        second = start_hub(database)
        assert second.epoch == 2
        assert HubState(database).current_epoch() == 2
        # The first boot is not a "restart"; every one after is.
        assert second.registry.stats().get("hub.restarts") == 1.0
        second.server_close()

    def test_register_and_status_expose_epoch(self, database):
        server = start_hub(database)
        try:
            joined = server.handle_line(frame("register", machine_id="m1"))
            assert joined["epoch"] == server.epoch == 1
            status = server.handle_line(frame("status"))
            assert status["epoch"] == 1
            assert status["recovery"]["sessions_requeued"] == 0
        finally:
            server.server_close()

    def test_leases_are_stamped_with_the_granting_epoch(self, database):
        server = start_hub(database)
        try:
            job = lease_one(server)
            stored = server.queue.get("sess", 1)
            assert stored.lease_epoch == server.epoch == 1
            assert job["id"] == stored.id
        finally:
            server.server_close()


class TestFencing:
    def _crashed_hub(self, database):
        """Lease a job under epoch 1, then 'crash' the hub and return
        (job, new incarnation).  The host still believes it holds the
        lease and still believes the epoch is 1."""
        old = start_hub(database)
        job = lease_one(old)
        old.server_close()  # SIGKILL, as far as the database can tell
        return job, start_hub(database)

    def test_stale_epoch_mutations_are_fenced(self, database):
        job, hub = self._crashed_hub(database)
        try:
            for op, extra in (
                ("extend", {}),
                ("fail", {"error": "boom"}),
                ("complete", {"result": pack_bytes(b"bits")}),
                ("lease", {}),
            ):
                response = hub.handle_line(frame(
                    op, machine_id="m1", worker="w0", job_id=job["id"],
                    epoch=1, **extra,
                ))
                assert not response["ok"], op
                assert response["fenced"] and response["reregister"], op
                assert response["epoch"] == 2, op
            # Nothing mutated: the job is still leased, unfinished.
            stored = hub.queue.get("sess", 1)
            assert stored.state == LEASED and stored.result is None
            assert hub.registry.stats()["hub.fenced_frames"] == 4.0
        finally:
            hub.server_close()

    def test_frames_without_epoch_stay_trusted(self, database):
        """Back-compat: pre-epoch clients (and in-process tests) omit
        the field entirely — they must keep working across a restart."""
        job, hub = self._crashed_hub(database)
        try:
            response = hub.handle_line(frame(
                "complete", machine_id="m1", worker="w0",
                job_id=job["id"], result=pack_bytes(b"bits"),
            ))
            assert response["ok"] and response["accepted"]
            assert hub.queue.get("sess", 1).state == DONE
        finally:
            hub.server_close()

    def test_resync_readopts_held_leases_under_new_epoch(self, database):
        job, hub = self._crashed_hub(database)
        try:
            response = hub.handle_line(frame(
                "resync", machine_id="m1",
                held={str(job["id"]): "w0"},
            ))
            assert response["ok"]
            assert response["renewed"] == [job["id"]]
            assert response["dropped"] == []
            assert response["epoch"] == 2
            assert hub.queue.get("sess", 1).lease_epoch == 2
            # The re-adopted lease completes under the new epoch.
            done = hub.handle_line(frame(
                "complete", machine_id="m1", worker="w0",
                job_id=job["id"], epoch=2,
                result=pack_bytes(b"bits"),
            ))
            assert done["ok"] and done["accepted"]
            assert not done["duplicate"]
        finally:
            hub.server_close()

    def test_resync_drops_leases_reclaimed_in_the_interim(self, database):
        job, hub = self._crashed_hub(database)
        try:
            # The janitor got there first: the machine was declared dead
            # during the partition and its leases were drained.
            assert hub.queue.reclaim_owner("m1") == 1
            response = hub.handle_line(frame(
                "resync", machine_id="m1",
                held={str(job["id"]): "w0"},
            ))
            assert response["ok"]
            assert response["renewed"] == []
            assert response["dropped"] == [job["id"]]
            # The host must abandon the attempt; its complete is now a
            # zombie's and is rejected.
            late = hub.handle_line(frame(
                "complete", machine_id="m1", worker="w0",
                job_id=job["id"], epoch=2,
                result=pack_bytes(b"stale"),
            ))
            assert late["ok"] and not late["accepted"]
        finally:
            hub.server_close()

    def test_complete_replay_across_crash_lands_exactly_once(
        self, database
    ):
        """The acceptance race: the worker sent its result, the hub
        crashed, and the worker cannot know whether the write landed.
        It resends with its stale epoch; the replay must be acknowledged
        (not fenced) and must not double-count."""
        old = start_hub(database)
        job = lease_one(old)
        first = old.handle_line(frame(
            "complete", machine_id="m1", worker="w0", job_id=job["id"],
            epoch=1, result=pack_bytes(b"bits"),
        ))
        assert first["ok"] and first["accepted"]
        old.server_close()  # ...the ack, however, was lost to the crash
        hub = start_hub(database)
        try:
            replay = hub.handle_line(frame(
                "complete", machine_id="m1", worker="w0",
                job_id=job["id"], epoch=1,
                result=pack_bytes(b"other-bits"),
            ))
            assert replay["ok"] and replay["accepted"]
            assert replay["duplicate"]
            stored = hub.queue.get("sess", 1)
            assert stored.result == b"bits"  # the first write won
            assert hub.registry.get("m1").jobs_done == 1  # not re-counted
            assert (
                hub.registry.stats()["hub.replayed_completions"] == 1.0
            )
        finally:
            hub.server_close()


class TestCrashRecovery:
    def test_orphaned_running_sessions_are_requeued(self, database):
        store = SessionStore(database)
        running = store.create(SessionSpec(**SPEC))
        queued = store.create(SessionSpec(**SPEC))
        claimed = store.claim_next_queued()
        assert claimed is not None and claimed.id == running
        assert store.get(running).state == S_RUNNING
        hub = start_hub(database)
        try:
            assert hub.recovery["sessions_requeued"] == 1
            assert store.get(running).state == S_QUEUED
            assert store.get(queued).state == S_QUEUED
        finally:
            hub.server_close()


class TestReclaimCompleteRace:
    """Satellite: the janitor's dead-host drain racing a live host's
    ``complete`` of the same lease.  Exactly one side wins, in both
    orderings — the loser's effect is a clean no-op."""

    def _leased(self, database):
        queue = JobQueue(database)
        queue.enqueue("sess", 1, "{}")
        job = queue.lease("m1/w0", ttl_s=30.0)
        assert job is not None
        return queue, job

    def test_complete_first_reclaim_is_noop(self, database):
        queue, job = self._leased(database)
        assert queue.complete(job.id, "m1/w0", b"bits")
        # The janitor declared m1 dead a moment too late: the job is
        # already DONE, so the prefix drain finds nothing to release.
        assert queue.reclaim_owner("m1") == 0
        stored = queue.get("sess", 1)
        assert stored.state == DONE and stored.result == b"bits"
        assert stored.attempts == 1

    def test_reclaim_first_complete_is_rejected(self, database):
        queue, job = self._leased(database)
        assert queue.reclaim_owner("m1") == 1
        # The "dead" host was actually alive and finishes a beat later:
        # its lease is gone, so the completion must not land.
        assert not queue.complete(job.id, "m1/w0", b"zombie-bits")
        assert not queue.is_done_by(job.id, "m1/w0")
        stored = queue.get("sess", 1)
        assert stored.state == QUEUED and stored.result is None
        # The retry owns the outcome and completes normally.
        retry = queue.lease("m2/w0", now=stored.next_retry_at + 1.0)
        assert retry is not None and retry.attempts == 2
        assert queue.complete(retry.id, "m2/w0", b"clean-bits")
        assert queue.get("sess", 1).result == b"clean-bits"


class TestErrorHistoryCap:
    def test_error_history_keeps_most_recent_entries(self, database):
        """Satellite: a hot-looping poison job must not grow its row
        without bound — only the newest attempts are retained."""
        queue = JobQueue(database)
        rounds = MAX_HISTORY_ENTRIES + 10
        queue.enqueue("sess", 1, "{}", max_attempts=rounds + 5)
        now = 1_000.0
        for attempt in range(1, rounds + 1):
            job = queue.lease("w0", now=now)
            assert job is not None
            assert queue.fail(job.id, "w0", f"boom {attempt}", now=now)
            now += 100.0  # clears any retry backoff
        history = queue.get("sess", 1).history()
        assert len(history) == MAX_HISTORY_ENTRIES
        assert history[-1]["error"] == f"boom {rounds}"
        assert history[0]["error"] == f"boom {rounds - MAX_HISTORY_ENTRIES + 1}"
        # Entries are still in attempt order after the cap.
        attempts = [entry["attempt"] for entry in history]
        assert attempts == sorted(attempts)
