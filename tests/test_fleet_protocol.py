"""Dispatch-protocol edge cases: frame hygiene, registration, the lease
ownership protocol over the wire, and artifact federation.

Most tests drive :meth:`FleetServer.handle_line` directly (the documented
unit-test seam); the socket-level class at the bottom exercises the parts
only a real connection can (oversized-frame drop, garbage tolerance,
reconnect)."""

import json
import socket
import threading

import pytest

import repro.fleet.server as fleet_server_module
from repro.errors import FleetError
from repro.fleet.client import FleetClient
from repro.fleet.server import FleetServer
from repro.fleet.wire import (
    decode_frame,
    encode_frame,
    pack_bytes,
    unpack_bytes,
)
from repro.service.queue import QUEUED
from repro.storage import TrialDatabase


def frame(op, **params):
    return json.dumps(dict(params, op=op)).encode()


@pytest.fixture()
def server():
    with TrialDatabase() as database:
        instance = FleetServer(
            database, port=0, num_shards=2, lease_ttl_s=5.0,
            machine_ttl_s=30.0,
        )
        try:
            yield instance
        finally:
            instance.server_close()


def register(server, machine_id, **extra):
    return server.handle_line(
        frame("register", machine_id=machine_id, **extra)
    )


class TestFrames:
    def test_wire_roundtrip(self):
        message = {"op": "ping", "n": 1}
        assert decode_frame(encode_frame(message).strip()) == message

    def test_pack_unpack_bytes(self):
        assert unpack_bytes(pack_bytes(b"\x00\xffblob")) == b"\x00\xffblob"
        assert pack_bytes(None) is None and unpack_bytes(None) is None
        with pytest.raises(FleetError):
            unpack_bytes("not base64!!")

    def test_encode_rejects_oversized(self):
        with pytest.raises(FleetError):
            encode_frame({"blob": "x" * fleet_server_module.MAX_FRAME_BYTES})

    def test_garbage_frame_answers_error(self, server):
        response = server.handle_line(b"{not json")
        assert not response["ok"]
        assert "bad frame" in response["error"]
        # The connection (and handler) survives: the next frame works.
        assert server.handle_line(frame("ping"))["ok"]

    def test_non_object_frame_answers_error(self, server):
        assert not server.handle_line(b"[1, 2, 3]")["ok"]

    def test_unknown_op(self, server):
        response = server.handle_line(frame("frobnicate"))
        assert not response["ok"]
        assert "unknown op" in response["error"]

    def test_internal_errors_become_frames(self, server):
        # complete with an unparseable base64 result: answered, not raised.
        response = server.handle_line(
            frame("complete", machine_id="m", job_id=1, result="!!!")
        )
        assert not response["ok"]


class TestRegistration:
    def test_fresh_machines_balance_across_shards(self, server):
        first = register(server, "m1")
        second = register(server, "m2")
        assert first["ok"] and second["ok"]
        assert {first["shard"], second["shard"]} == {0, 1}
        assert not first["rejoined"]
        assert first["lease_ttl_s"] == 5.0

    def test_duplicate_machine_id_keeps_shard(self, server):
        """Re-registering the same id is a host reconnect, not a new
        machine: it must come back on the shard its sessions live on."""
        shard = register(server, "m1")["shard"]
        register(server, "m2")
        again = register(server, "m1")
        assert again["rejoined"]
        assert again["shard"] == shard

    def test_register_requires_machine_id(self, server):
        assert not server.handle_line(frame("register"))["ok"]

    def test_heartbeat_unknown_machine_hints_reregister(self, server):
        response = server.handle_line(frame("heartbeat", machine_id="ghost"))
        assert not response["ok"]
        assert response["reregister"]


class TestLeaseProtocol:
    def _setup_job(self, server, machine_id="m1", trial_id=1):
        shard = register(server, machine_id)["shard"]
        server.queue.enqueue("sess", trial_id, "{}", shard=shard)
        return shard

    def test_lease_from_unregistered_machine_rejected(self, server):
        response = server.handle_line(frame("lease", machine_id="ghost"))
        assert not response["ok"]
        assert response["reregister"]

    def test_lease_respects_machine_shard(self, server):
        self._setup_job(server, "m1")
        register(server, "m2")  # other shard: must not see m1's job
        assert server.handle_line(
            frame("lease", machine_id="m2")
        )["job"] is None
        job = server.handle_line(frame("lease", machine_id="m1"))["job"]
        assert job is not None and job["trial_id"] == 1

    def test_lease_complete_roundtrip(self, server):
        self._setup_job(server, "m1")
        job = server.handle_line(
            frame("lease", machine_id="m1", worker="w3")
        )["job"]
        blob = b"pickled-evaluation"
        response = server.handle_line(frame(
            "complete", machine_id="m1", worker="w3",
            job_id=job["id"], result=pack_bytes(blob),
        ))
        assert response["ok"] and response["accepted"]
        stored = server.queue.get("sess", 1)
        assert stored.result == blob
        assert stored.lease_owner == "m1/w3"  # prefix-drainable owner
        assert server.registry.get("m1").jobs_done == 1
        # A second completion by the *same* owner is an idempotent
        # replay (the worker cannot know whether its first send landed
        # before a hub crash): acknowledged without a second write.
        replay = server.handle_line(frame(
            "complete", machine_id="m1", worker="w3",
            job_id=job["id"], result=pack_bytes(b"other-bits"),
        ))
        assert replay["ok"] and replay["accepted"] and replay["duplicate"]
        assert server.queue.get("sess", 1).result == blob  # first wins
        assert server.registry.get("m1").jobs_done == 1  # not re-counted
        # A different worker claiming the finished job is still rejected.
        assert not server.handle_line(frame(
            "complete", machine_id="m1", worker="w9",
            job_id=job["id"], result=pack_bytes(blob),
        ))["accepted"]

    def test_mid_lease_disconnect_then_reacquisition(self, server):
        """A host that vanishes mid-lease stops extending; after expiry
        the job is re-leased (attempt 2) by another machine."""
        self._setup_job(server, "m1")
        register(server, "m2")
        job = server.handle_line(frame("lease", machine_id="m1"))["job"]
        assert job["attempts"] == 1
        # m1 disconnects: no extends.  The janitor reclaims after TTL.
        import time as _time
        sweep = server.janitor_sweep(now=_time.time() + 6.0)
        assert sweep["leases_expired"] == 1
        requeued = server.queue.get("sess", 1)
        assert requeued.state == QUEUED
        # Backoff has passed by `now`; m1's shard still owns the job, so
        # the re-lease comes from m1 (here: the respawned process).
        retry = server.handle_line(frame("lease", machine_id="m1"))
        assert retry["job"] is None  # backoff still pending at real now
        leased = server.queue.lease(
            "m1/w0", now=_time.time() + 7.0, shard=job["shard"]
        )
        assert leased is not None and leased.attempts == 2

    def test_zombie_complete_after_expiry_rejected(self, server):
        self._setup_job(server, "m1")
        job = server.handle_line(frame("lease", machine_id="m1"))["job"]
        import time as _time
        server.janitor_sweep(now=_time.time() + 6.0)
        response = server.handle_line(frame(
            "complete", machine_id="m1", worker="w0",
            job_id=job["id"], result=pack_bytes(b"stale"),
        ))
        assert response["ok"] and not response["accepted"]
        assert server.registry.get("m1").jobs_done == 0

    def test_extend_renews_job_and_machine(self, server):
        self._setup_job(server, "m1")
        job = server.handle_line(frame("lease", machine_id="m1"))["job"]
        before = server.registry.get("m1").last_heartbeat_at
        response = server.handle_line(frame(
            "extend", machine_id="m1", worker="w0", job_id=job["id"]
        ))
        assert response["ok"] and response["renewed"]
        assert server.registry.get("m1").last_heartbeat_at >= before

    def test_dead_host_drain_releases_leases_immediately(self, server):
        """Machine-level containment: when heartbeats stop, the janitor
        drains every lease the machine held without waiting for each
        job's own (much longer) lease to expire."""
        shard = register(server, "m1")["shard"]
        for trial in (1, 2):
            server.queue.enqueue("sess", trial, "{}", shard=shard)
        for worker in ("w0", "w1"):
            job = server.handle_line(
                frame("lease", machine_id="m1", worker=worker)
            )["job"]
            assert job is not None
            # Long manual lease: only the dead-host drain can free it soon.
            server.queue.heartbeat(job["id"], f"m1/{worker}", ttl_s=900.0)
        import time as _time
        sweep = server.janitor_sweep(now=_time.time() + 31.0)
        assert sweep["machines_expired"] == 1
        assert sweep["leases_drained"] == 2
        assert server.registry.stats()["leases.drained"] == 2.0
        # The dead machine must re-register before taking work again.
        refused = server.handle_line(frame("lease", machine_id="m1"))
        assert not refused["ok"] and refused["reregister"]
        rejoin = register(server, "m1")
        assert rejoin["rejoined"] and rejoin["shard"] == shard

    def test_drain_stops_handing_out_work(self, server):
        self._setup_job(server, "m1")
        assert server.handle_line(frame("drain"))["draining"]
        response = server.handle_line(frame("lease", machine_id="m1"))
        assert response["ok"]
        assert response["job"] is None and response["draining"]


class TestArtifactFederation:
    def test_put_probe_get_roundtrip(self, server):
        blob = b"\x80checkpoint-bytes"
        put = server.handle_line(frame(
            "artifact_put", key="k1", payload=pack_bytes(blob),
            workload="IC", trial_id=3, epochs=2, data_fraction=0.5,
        ))
        assert put["ok"] and put["stored"]
        probe = server.handle_line(
            frame("artifact_get", key="k1", probe=True)
        )
        assert probe["present"]
        got = server.handle_line(frame("artifact_get", key="k1"))
        assert unpack_bytes(got["payload"]) == blob
        miss = server.handle_line(frame("artifact_get", key="nope"))
        assert miss["ok"] and miss["payload"] is None
        stats = server.registry.stats()
        assert stats["federation.uploads"] == 1.0
        assert stats["federation.hits"] == 1.0
        assert stats["federation.misses"] == 1.0

    def test_put_requires_key_and_payload(self, server):
        assert not server.handle_line(frame("artifact_put", key="k"))["ok"]
        assert not server.handle_line(
            frame("artifact_put", payload=pack_bytes(b"x"))
        )["ok"]

    def test_status_reports_machines_and_counters(self, server):
        register(server, "m1", capabilities={"fingerprint": "fp-a"})
        status = server.handle_line(frame("status"))
        assert status["ok"]
        (machine,) = status["machines"]
        assert machine["id"] == "m1"
        assert machine["fingerprint"] == "fp-a"
        assert machine["heartbeat_age_s"] >= 0
        assert status["num_shards"] == 2
        assert set(status["queue"]) == {
            "queued", "leased", "done", "failed"
        }


class TestOverTheWire:
    """Edge cases only a real socket can exercise."""

    @pytest.fixture()
    def live_server(self):
        with TrialDatabase() as database:
            server = FleetServer(database, port=0, lease_ttl_s=5.0)
            thread = threading.Thread(
                target=server.serve_until_drained, daemon=True
            )
            thread.start()
            try:
                yield server
            finally:
                server.initiate_drain()
                thread.join(timeout=5.0)

    def test_client_roundtrip(self, live_server):
        with FleetClient("127.0.0.1", live_server.port) as client:
            assert client.request("ping")["pong"]
            response = client.request("register", machine_id="m1")
            assert response["ok"] and response["shard"] in (0, 1)

    def test_garbage_frame_keeps_connection(self, live_server):
        with socket.create_connection(
            ("127.0.0.1", live_server.port), timeout=5.0
        ) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"complete garbage\n")
            response = decode_frame(reader.readline())
            assert not response["ok"]
            # Same connection still serves well-formed frames.
            sock.sendall(frame("ping") + b"\n")
            assert decode_frame(reader.readline())["pong"]

    def test_oversized_frame_drops_connection(self, live_server,
                                              monkeypatch):
        monkeypatch.setattr(
            fleet_server_module, "MAX_FRAME_BYTES", 4096
        )
        with socket.create_connection(
            ("127.0.0.1", live_server.port), timeout=5.0
        ) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"x" * 10000 + b"\n")
            response = decode_frame(reader.readline())
            assert not response["ok"]
            assert "frame too long" in response["error"]
            # The stream is unrecoverable: the server hangs up (a reset
            # is possible when it closes with bytes still unread).
            try:
                rest = reader.readline()
            except OSError:
                rest = b""
            assert rest == b""

    def test_mid_lease_disconnect_over_socket(self, live_server):
        """The wire version of vanish-mid-lease: the TCP connection dies
        with the lease held; nothing is completed; reclaim frees it."""
        live_server.queue.enqueue("sess", 1, "{}", shard=0)
        client = FleetClient("127.0.0.1", live_server.port)
        client.request("register", machine_id="m1")
        job = client.request("lease", machine_id="m1")["job"]
        assert job is not None
        client.close()  # host gone, lease still held
        import time as _time
        assert live_server.queue.reclaim_expired(
            now=_time.time() + 6.0
        ) == 1
        assert live_server.queue.get("sess", 1).state == QUEUED
