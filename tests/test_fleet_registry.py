"""Tests for the fleet's storage-facing pieces: machine registry, shard
router, per-shard queues, dead-host lease draining, and fleet counters."""

import pytest

from repro.fleet.registry import (
    ALIVE,
    DEAD,
    Machine,
    MachineRegistry,
    local_capabilities,
)
from repro.fleet.router import ShardRouter
from repro.service.queue import JobQueue, LEASED, QUEUED
from repro.storage import TrialDatabase


@pytest.fixture()
def db():
    with TrialDatabase() as database:
        yield database


class TestMachineRegistry:
    def test_register_and_get(self, db):
        registry = MachineRegistry(db)
        machine = registry.register(
            "m1", capabilities={"hostname": "edge-a", "cores": 4},
            shard=1, now=100.0,
        )
        assert machine.id == "m1"
        assert machine.hostname == "edge-a"
        assert machine.shard == 1
        assert machine.state == ALIVE
        assert machine.capabilities["cores"] == 4
        assert machine.registered_at == 100.0

    def test_duplicate_registration_keeps_shard(self, db):
        """A host restarting with the same machine id is a reconnect:
        capabilities refresh, the shard assignment survives."""
        registry = MachineRegistry(db)
        registry.register("m1", capabilities={"cores": 2}, shard=3,
                          now=100.0)
        again = registry.register(
            "m1", capabilities={"cores": 8}, now=200.0
        )
        assert again.shard == 3
        assert again.capabilities["cores"] == 8
        assert again.last_heartbeat_at == 200.0
        assert len(registry.list()) == 1

    def test_heartbeat_refreshes_and_revives(self, db):
        registry = MachineRegistry(db)
        registry.register("m1", shard=0, now=100.0)
        registry.set_state("m1", DEAD)
        assert registry.heartbeat("m1", now=150.0)
        machine = registry.get("m1")
        assert machine.state == ALIVE
        assert machine.last_heartbeat_at == 150.0

    def test_heartbeat_unknown_machine(self, db):
        assert not MachineRegistry(db).heartbeat("ghost")

    def test_expire_flips_only_stale_machines_once(self, db):
        registry = MachineRegistry(db)
        registry.register("fresh", now=100.0)
        registry.register("stale", now=10.0)
        doomed = registry.expire(ttl_s=30.0, now=100.0)
        assert doomed == ["stale"]
        assert registry.get("stale").state == DEAD
        assert registry.get("fresh").state == ALIVE
        # The second sweep reports nothing new — the janitor drains each
        # dead machine's leases exactly once.
        assert registry.expire(ttl_s=30.0, now=101.0) == []
        assert registry.stats()["machines.expired"] == 1.0

    def test_record_done_and_forget(self, db):
        registry = MachineRegistry(db)
        registry.register("m1", now=1.0)
        registry.record_done("m1")
        registry.record_done("m1", count=2)
        assert registry.get("m1").jobs_done == 3
        assert registry.forget("m1")
        assert registry.get("m1") is None

    def test_fleet_counters_crash_safe_upserts(self, db):
        registry = MachineRegistry(db)
        registry.bump("federation.hits")
        registry.bump("federation.hits", 2)
        registry.bump("federation.uploads", 5)
        # A second registry instance (another process in production)
        # reads the same counters from the table.
        assert MachineRegistry(db).stats() == {
            "federation.hits": 3.0,
            "federation.uploads": 5.0,
        }

    def test_local_capabilities_shape(self):
        tags = local_capabilities()
        assert tags["hostname"]
        assert tags["cores"] >= 1
        assert "backend" in tags["fingerprint"]
        assert "IC" in tags["workloads"]


class TestShardRouter:
    def _registry(self, db, placements):
        registry = MachineRegistry(db)
        for machine_id, shard in placements:
            registry.register(machine_id, shard=shard, now=100.0)
        return registry

    def test_place_machine_balances(self, db):
        registry = self._registry(db, [("a", 0)])
        router = ShardRouter(registry, num_shards=2)
        assert router.place_machine() == 1
        registry.register("b", shard=1, now=100.0)
        assert router.place_machine() == 0  # tie → lowest shard

    def test_session_affinity_is_deterministic(self, db):
        registry = self._registry(db, [("a", 0), ("b", 1)])
        router = ShardRouter(registry, num_shards=2)
        first = router.shard_for_session("session-x", workload="IC")
        assert all(
            router.shard_for_session("session-x", workload="IC") == first
            for _ in range(10)
        )
        # Different sessions spread across both shards eventually.
        shards = {
            router.shard_for_session(f"s{i}", workload="IC")
            for i in range(32)
        }
        assert shards == {0, 1}

    def test_routing_skips_shards_without_capable_machines(self, db):
        registry = MachineRegistry(db)
        registry.register(
            "a", capabilities={"workloads": ["IC"]}, shard=0, now=100.0
        )
        registry.register(
            "b", capabilities={"workloads": ["SR"]}, shard=1, now=100.0
        )
        router = ShardRouter(registry, num_shards=2)
        for i in range(8):
            assert router.shard_for_session(f"s{i}", workload="IC") == 0
            assert router.shard_for_session(f"s{i}", workload="SR") == 1

    def test_empty_fleet_falls_back_to_full_range(self, db):
        router = ShardRouter(MachineRegistry(db), num_shards=3)
        assert router.shard_for_session("s", workload="IC") in (0, 1, 2)

    def test_dead_machines_are_not_candidates(self, db):
        registry = self._registry(db, [("a", 0), ("b", 1)])
        registry.set_state("b", DEAD)
        router = ShardRouter(registry, num_shards=2)
        for i in range(8):
            assert router.shard_for_session(f"s{i}") == 0

    def test_supports_defaults_to_universal(self):
        machine = Machine(id="m", hostname="h", shard=0, state=ALIVE)
        assert machine.supports("IC")


class TestShardedQueue:
    def test_lease_respects_shard_filter(self, db):
        queue = JobQueue(db)
        queue.enqueue("s", 1, "{}", shard=0)
        queue.enqueue("s", 2, "{}", shard=1)
        job = queue.lease("w", shard=1)
        assert job.trial_id == 2 and job.shard == 1
        assert queue.lease("w2", shard=1) is None
        # Unsharded lease (local pool workers) still sees everything.
        assert queue.lease("w3").trial_id == 1

    def test_reclaim_owner_drains_machine_prefix(self, db):
        """Dead-host drain: every lease held by ``machine/<worker>`` is
        released at once, without waiting for per-job expiry."""
        queue = JobQueue(db)
        for trial in (1, 2, 3):
            queue.enqueue("s", trial, "{}")
        queue.lease("m1/w0", ttl_s=1000.0, now=10.0)
        queue.lease("m1/w1", ttl_s=1000.0, now=10.0)
        queue.lease("m2/w0", ttl_s=1000.0, now=10.0)
        assert queue.reclaim_owner("m1", now=20.0) == 2
        jobs = {j.trial_id: j for j in queue.jobs_for("s")}
        assert jobs[1].state == QUEUED
        assert "host declared dead" in jobs[1].error
        assert jobs[3].state == LEASED  # m2 untouched

    def test_reclaim_owner_exact_match_without_worker_suffix(self, db):
        queue = JobQueue(db)
        queue.enqueue("s", 1, "{}")
        queue.lease("m1", ttl_s=1000.0, now=10.0)
        assert queue.reclaim_owner("m1", now=20.0) == 1

    def test_reclaim_owner_exhausted_attempts_quarantines(self, db):
        queue = JobQueue(db)
        queue.enqueue("s", 1, "{}", max_attempts=1)
        queue.lease("m1/w0", ttl_s=1000.0, now=10.0)
        assert queue.reclaim_owner("m1", now=20.0) == 1
        assert queue.dead_letter_count("s") == 1
