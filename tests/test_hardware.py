"""Tests for the hardware emulator: devices, CPU/GPU models, counters,
the real-device perturbation model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeviceError
from repro.hardware import (
    DEVICES,
    DeviceSpec,
    Emulator,
    RealEdgeDevice,
    amdahl_speedup,
    allreduce_time_s,
    collect_counters,
    device_names,
    edge_device_names,
    get_device,
    gpu_efficiency,
    magnitude_bucket,
    memory_penalty,
    parallel_fraction,
    run_on_cpu,
    run_training_on_gpus,
    simd_efficiency,
    working_set,
)
from repro.hardware.counters import EVENTS, PHASES
from repro.telemetry import percent_error


def edge():
    return get_device("armv7")


def server():
    return get_device("titan-server")


class TestDeviceSpec:
    def test_registry_contains_paper_platforms(self):
        assert {"armv7", "raspberrypi3b", "i7nuc", "titan-server"} <= set(
            device_names()
        )

    def test_edge_devices_have_no_gpus(self):
        for name in edge_device_names():
            assert get_device(name).gpus == 0

    def test_unknown_device_rejected(self):
        with pytest.raises(DeviceError):
            get_device("tpu-v4")

    def test_frequency_validation(self):
        with pytest.raises(DeviceError):
            edge().validate_frequency(9.9)

    def test_cores_validation(self):
        with pytest.raises(DeviceError):
            edge().validate_cores(99)
        with pytest.raises(DeviceError):
            edge().validate_cores(0)

    def test_invalid_spec_rejected(self):
        with pytest.raises(DeviceError):
            DeviceSpec(
                name="x", device_class="cloud", cores=1,
                frequencies_ghz=(1.0,), flops_per_cycle=1, serial_fraction=0,
                memory_gb=1, llc_kb=1, memory_bandwidth_gbps=1,
                idle_power_w=1, core_power_w=1,
            )

    def test_power_scales_with_frequency_squared(self):
        device = edge()
        low = device.cpu_power_w(4, device.frequencies_ghz[0], 1.0)
        high = device.cpu_power_w(4, device.max_frequency_ghz, 1.0)
        assert high > low


class TestCpuModel:
    def test_parallel_fraction_grows_with_batch(self):
        device = edge()
        fractions = [parallel_fraction(b, device) for b in (1, 4, 32, 256)]
        assert fractions == sorted(fractions)
        assert fractions[0] < 0.3  # single sample barely parallel

    def test_amdahl_limits(self):
        assert amdahl_speedup(1, 0.9) == pytest.approx(1.0)
        assert amdahl_speedup(1000, 0.5) < 2.0001

    def test_simd_efficiency_bounds(self):
        assert 0.5 < simd_efficiency(1) < simd_efficiency(64) <= 1.0

    def test_memory_penalty_grows_past_cache(self):
        device = edge()
        small = memory_penalty(int(device.llc_kb * 512), device)
        big = memory_penalty(int(device.llc_kb * 1024 * 64), device)
        assert small == 1.0
        assert big > 1.0

    def test_memory_penalty_explodes_past_ram(self):
        device = get_device("raspberrypi3b")
        over_ram = int(device.memory_gb * 1e9 * 4)
        assert memory_penalty(over_ram, device) > 10.0

    def test_training_working_set_exceeds_inference(self):
        train = working_set(1e6, 1e4, 32, training=True)
        infer = working_set(1e6, 1e4, 32, training=False)
        assert train > 2 * infer

    def test_single_image_cores_flat_energy_up(self):
        """Fig 5a: more cores don't speed up single-image inference but
        do cost more energy."""
        device = edge()
        one = run_on_cpu(1e9, 50e6, 3e6, 1, device, cores=1)
        four = run_on_cpu(1e9, 50e6, 3e6, 1, device, cores=4)
        assert four.runtime_s > 0.75 * one.runtime_s  # barely faster
        assert four.energy_j > one.energy_j

    def test_multi_image_cores_scale(self):
        """Fig 5b: batch 10 gains real throughput from 1 -> 4 cores."""
        device = edge()
        one = run_on_cpu(1e10, 50e6, 3e6, 10, device, cores=1)
        four = run_on_cpu(1e10, 50e6, 3e6, 10, device, cores=4)
        assert four.runtime_s < 0.7 * one.runtime_s

    def test_invalid_inputs(self):
        with pytest.raises(DeviceError):
            run_on_cpu(0, 1, 1, 1, edge())
        with pytest.raises(DeviceError):
            run_on_cpu(1e9, 1, 1, 0, edge())


class TestGpuModel:
    def test_small_batch_degrades_with_gpus(self):
        """Fig 4a: batch 32 training gets slower with more GPUs."""
        device = server()
        runtimes = [
            run_training_on_gpus(1e15, 10_000, 50e6, 32, device, g).runtime_s
            for g in (1, 4, 8)
        ]
        assert runtimes[2] > runtimes[0]
        degradation = runtimes[2] / runtimes[0] - 1
        assert 0.3 < degradation < 2.5  # paper: up to ~120 %

    def test_large_batch_speeds_up_sublinearly(self):
        """Fig 4b: batch 1024 speeds up, but << 8x at 8 GPUs."""
        device = server()
        one = run_training_on_gpus(1e15, 1_000, 50e6, 1024, device, 1)
        eight = run_training_on_gpus(1e15, 1_000, 50e6, 1024, device, 8)
        assert eight.runtime_s < one.runtime_s
        assert one.runtime_s / eight.runtime_s < 8.0
        assert eight.energy_j > 0.9 * one.energy_j

    def test_gpu_efficiency_monotone(self):
        values = [gpu_efficiency(b) for b in (1, 8, 64, 512)]
        assert values == sorted(values)
        assert values[-1] < 1.0

    def test_allreduce_zero_for_single_gpu(self):
        assert allreduce_time_s(50e6, 1, server()) == 0.0

    def test_allreduce_grows_with_gpus(self):
        device = server()
        assert allreduce_time_s(50e6, 8, device) > allreduce_time_s(
            50e6, 2, device
        )

    def test_too_many_gpus_rejected(self):
        with pytest.raises(DeviceError):
            run_training_on_gpus(1e12, 10, 1e6, 32, server(), 99)


class TestEmulator:
    def test_training_measurement_positive(self):
        emulator = Emulator()
        m = emulator.measure_training(1e8, 25_000, 12_000, 5000, 256, gpus=1)
        assert m.runtime_s > 0 and m.energy_j > 0
        assert m.energy_j == pytest.approx(m.runtime_s * m.power_w)

    def test_inference_throughput_consistent(self):
        emulator = Emulator()
        m = emulator.measure_inference(25_000, 12_000, 8, "armv7", cores=2)
        assert m.throughput_sps == pytest.approx(8 / m.batch_latency_s)

    def test_deeper_model_slower_inference(self):
        emulator = Emulator()
        shallow = emulator.measure_inference(25_000, 12_000, 1, "armv7")
        deep = emulator.measure_inference(50_000, 24_000, 1, "armv7")
        assert deep.throughput_sps < shallow.throughput_sps
        assert deep.energy_per_sample_j > shallow.energy_per_sample_j

    def test_cpu_training_path(self):
        emulator = Emulator()
        m = emulator.measure_training(
            1e8, 25_000, 12_000, 5000, 256, device="i7nuc", gpus=0, cores=4
        )
        assert m.gpus == 0 and m.runtime_s > 0

    def test_invalid_scales_rejected(self):
        with pytest.raises(DeviceError):
            Emulator(flops_scale=0)

    def test_batch_saturation_decay(self):
        """Fig 3b: throughput decays once the working set thrashes RAM."""
        emulator = Emulator()
        throughputs = [
            emulator.measure_inference(
                25_000, 12_000, b, "raspberrypi3b", cores=4
            ).throughput_sps
            for b in (1, 10, 100, 2000)
        ]
        assert throughputs[1] > throughputs[0]
        assert throughputs[3] < throughputs[2]


class TestCounters:
    def test_all_events_present(self):
        rates = collect_counters(1e9, "inference", edge())
        assert len(rates) == len(EVENTS) == 22

    def test_cpu_events_phase_consistent(self):
        device = edge()
        train = collect_counters(1e9, "train_forward", device, seed=1)
        infer = collect_counters(1e9, "inference", device, seed=1)
        for event in EVENTS:
            ratio = train[event.name] / infer[event.name]
            if event.category == "cpu":
                assert 0.7 < ratio < 1.4, event.name
            if event.category == "memory":
                assert ratio > 1.3, event.name

    def test_unknown_phase_rejected(self):
        with pytest.raises(DeviceError):
            collect_counters(1e9, "backward", edge())

    def test_magnitude_buckets(self):
        assert magnitude_bucket(5e8) == ">1e8"
        assert magnitude_bucket(5e6) == "1e8-1e6"
        assert magnitude_bucket(5e4) == "1e6-1e4"
        assert magnitude_bucket(5e2) == "1e4-1e2"
        assert magnitude_bucket(5) == "<1e2"


class TestRealEdgeDevice:
    def test_error_is_structured_not_huge(self):
        """Fig 15: percent error stays small for typical configs."""
        emulator = Emulator()
        real = RealEdgeDevice.of("armv7", emulator, seed=3)
        errors = []
        for batch in (1, 4, 16, 64):
            for cores in (1, 2, 4):
                estimated = emulator.measure_inference(
                    25_000, 12_000, batch, "armv7", cores=cores
                )
                actual = real.measure_inference(
                    25_000, 12_000, batch, cores=cores
                )
                errors.append(percent_error(
                    actual.throughput_sps, estimated.throughput_sps
                ))
        assert np.median(errors) < 20.0
        assert max(errors) < 80.0

    def test_deterministic(self):
        real = RealEdgeDevice.of("armv7", seed=5)
        a = real.measure_inference(25_000, 12_000, 4, cores=2)
        b = real.measure_inference(25_000, 12_000, 4, cores=2)
        assert a.batch_latency_s == b.batch_latency_s

    def test_real_slower_than_ideal_for_tiny_batches(self):
        """The fixed call overhead hurts batch 1 most."""
        emulator = Emulator()
        real = RealEdgeDevice.of("i7nuc", emulator, seed=0)
        estimated = emulator.measure_inference(25_000, 12_000, 1, "i7nuc")
        actual = real.measure_inference(25_000, 12_000, 1)
        assert actual.batch_latency_s != estimated.batch_latency_s


@given(
    batch=st.integers(1, 512),
    cores=st.integers(1, 4),
    flops=st.floats(1e3, 1e7),
)
@settings(max_examples=50, deadline=None)
def test_property_inference_measurement_sane(batch, cores, flops):
    """Any in-range inference measurement is finite and positive."""
    emulator = Emulator()
    m = emulator.measure_inference(flops, 10_000, batch, "armv7", cores=cores)
    assert math.isfinite(m.batch_latency_s) and m.batch_latency_s > 0
    assert math.isfinite(m.energy_per_sample_j) and m.energy_per_sample_j > 0
    assert m.power_w > 0


@given(cores=st.integers(1, 16), fraction=st.floats(0.0, 0.99))
@settings(max_examples=50, deadline=None)
def test_property_amdahl_speedup_bounded(cores, fraction):
    speedup = amdahl_speedup(cores, fraction)
    assert 1.0 <= speedup <= cores + 1e-9
