"""Tests for the Inference Tuning Server (§3.4)."""

import pytest

from repro.core import InferenceTuningServer, architecture_key_of
from repro.hardware import Emulator
from repro.objectives import InferenceObjective
from repro.storage import TrialDatabase
from repro.workloads import get_workload

FLOPS = 25_000
PARAMS = 12_000


def make_server(**kwargs):
    defaults = dict(
        device="armv7",
        emulator=Emulator(),
        database=TrialDatabase(),
        seed=3,
    )
    defaults.update(kwargs)
    return InferenceTuningServer(**defaults)


def space(device="armv7"):
    return get_workload("IC").inference_space(device)


class TestTuning:
    def test_returns_best_by_objective(self):
        server = make_server(objective=InferenceObjective("energy"))
        recommendation, records = server.tune("arch", FLOPS, PARAMS, space())
        assert records
        best_score = min(record.score for record in records)
        energy = recommendation.measurement.energy_per_sample_j
        assert energy == pytest.approx(best_score)

    def test_throughput_objective_changes_choice(self):
        energy_server = make_server(objective=InferenceObjective("energy"))
        throughput_server = make_server(
            objective=InferenceObjective("throughput")
        )
        by_energy, _ = energy_server.tune("arch", FLOPS, PARAMS, space())
        by_throughput, _ = throughput_server.tune(
            "arch", FLOPS, PARAMS, space()
        )
        assert (
            by_throughput.measurement.throughput_sps
            >= by_energy.measurement.throughput_sps
        )

    def test_recommendation_within_space(self):
        server = make_server()
        recommendation, _ = server.tune("arch", FLOPS, PARAMS, space())
        configuration = recommendation.configuration
        assert 1 <= configuration["inference_batch_size"] <= 100
        assert 1 <= configuration["cores"] <= 4

    def test_tuning_cost_accounted(self):
        server = make_server()
        recommendation, records = server.tune("arch", FLOPS, PARAMS, space())
        assert recommendation.tuning_runtime_s > 0
        assert recommendation.tuning_energy_j > 0
        assert recommendation.tuning_runtime_s == pytest.approx(
            sum(record.sim_cost_s for record in records)
        )

    def test_random_algorithm(self):
        server = make_server(algorithm="random", num_trials=10)
        recommendation, records = server.tune("arch", FLOPS, PARAMS, space())
        assert len(records) <= 10
        assert recommendation.configuration


class TestCache:
    def test_second_call_hits_cache(self):
        """§3.4: architectures are never re-tuned."""
        server = make_server()
        first, records = server.tune("arch", FLOPS, PARAMS, space())
        assert not first.cache_hit and records
        second, records2 = server.tune("arch", FLOPS, PARAMS, space())
        assert second.cache_hit
        assert records2 == []
        assert second.tuning_runtime_s == 0.0
        assert second.configuration == first.configuration

    def test_cache_shared_through_database(self):
        database = TrialDatabase()
        server_a = make_server(database=database)
        server_a.tune("arch", FLOPS, PARAMS, space())
        server_b = make_server(database=database)
        assert server_b.cached("arch") is not None

    def test_cache_keyed_by_objective(self):
        database = TrialDatabase()
        energy = make_server(
            database=database, objective=InferenceObjective("energy")
        )
        energy.tune("arch", FLOPS, PARAMS, space())
        runtime = make_server(
            database=database, objective=InferenceObjective("runtime")
        )
        assert runtime.cached("arch") is None

    def test_cached_measurement_roundtrip(self):
        server = make_server()
        first, _ = server.tune("arch", FLOPS, PARAMS, space())
        cached = server.cached("arch")
        assert cached.measurement.throughput_sps == pytest.approx(
            first.measurement.throughput_sps
        )
        assert cached.measurement.energy_per_sample_j == pytest.approx(
            first.measurement.energy_per_sample_j
        )


class TestArchitectureKey:
    def test_key_depends_on_structure_only(self):
        a = architecture_key_of("yolo", 36_360, 6156)
        b = architecture_key_of("yolo", 36_360, 6156)
        assert a == b

    def test_key_distinguishes_families_and_sizes(self):
        base = architecture_key_of("resnet", 25_000, 12_000)
        assert architecture_key_of("m5", 25_000, 12_000) != base
        assert architecture_key_of("resnet", 50_000, 12_000) != base
        assert architecture_key_of("resnet", 25_000, 24_000) != base
