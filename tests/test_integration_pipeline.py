"""Cross-module integration tests: the full tuning pipeline on every
workload, pipelining guarantees, and baseline-vs-EdgeTune invariants."""

import pytest

from repro import EdgeTune
from repro.budgets import MultiBudget
from repro.storage import TrialDatabase

FAST_BUDGET = MultiBudget(min_epochs=1, max_epochs=4, min_fraction=0.25)


@pytest.mark.parametrize("workload_id", ["IC", "SR", "NLP", "OD"])
def test_edgetune_runs_on_every_workload(workload_id):
    """The headline integration test: the full onefold pipeline works on
    all four paper workloads and produces coherent outputs."""
    result = EdgeTune(
        workload=workload_id,
        seed=3,
        samples=200,
        budget=FAST_BUDGET,
        max_trials=8,
    ).tune()
    assert result.workload_id == workload_id
    assert result.num_trials == 8
    assert 0.0 <= result.best_accuracy <= 1.0
    assert result.tuning_runtime_s > 0
    assert result.tuning_energy_j > 0
    # Inference recommendation exists and is internally consistent.
    recommendation = result.inference
    assert recommendation is not None
    measurement = recommendation.measurement
    assert measurement.throughput_sps > 0
    assert measurement.energy_per_sample_j > 0
    assert measurement.batch_size == int(
        recommendation.configuration["inference_batch_size"]
    )


def test_inference_energy_included_in_total():
    """Tuning energy covers training trials plus the inference server's
    simulation work (it is not free)."""
    database = TrialDatabase()
    result = EdgeTune(
        workload="IC", seed=3, samples=200, budget=FAST_BUDGET,
        max_trials=8, database=database,
    ).tune()
    training_energy = sum(r.training.energy_j for r in result.trials)
    assert result.tuning_energy_j > training_energy


def test_trials_reuse_cached_inference_without_stall():
    """Once an architecture's inference results are cached, later trials
    for it add no inference lane work and no stalls (§3.4)."""
    result = EdgeTune(
        workload="OD",  # dropout does not change the architecture
        seed=3,
        samples=200,
        budget=FAST_BUDGET,
        max_trials=10,
    ).tune()
    # YOLO's tunable (dropout) never alters FLOPs/params, so exactly one
    # architecture is ever tuned for inference...
    stalled = [r for r in result.trials if r.stall_s > 0]
    assert len(stalled) <= 1
    # ...and every trial still carries the inference measurement.
    assert all(r.inference is not None for r in result.trials)


def test_shared_database_accelerates_second_run():
    """A second tuning run against the same persistent database reuses
    the historical inference results across runs (§3.4)."""
    database = TrialDatabase()
    first = EdgeTune(workload="IC", seed=3, samples=200,
                     budget=FAST_BUDGET, max_trials=8,
                     database=database).tune()
    cache_after_first = database.inference_cache_size()
    second = EdgeTune(workload="IC", seed=4, samples=200,
                      budget=FAST_BUDGET, max_trials=8,
                      database=database).tune()
    # The cache does not regrow beyond the distinct-architecture count.
    assert database.inference_cache_size() <= cache_after_first + 1
    assert second.stall_s <= first.stall_s + 1e-9


def test_onefold_explores_joint_space():
    """The onefold approach samples hyper AND system parameters jointly:
    multiple distinct GPU counts appear across trials."""
    result = EdgeTune(
        workload="IC", seed=3, samples=200, budget=FAST_BUDGET,
        max_trials=12,
    ).tune()
    gpu_values = {r.configuration["gpus"] for r in result.trials}
    assert len(gpu_values) >= 3
