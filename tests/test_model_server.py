"""Integration tests for the Model Tuning Server and the EdgeTune facade."""

import pytest

from repro import EdgeTune
from repro.budgets import DatasetBudget, MultiBudget
from repro.core import InferenceTuningServer, ModelTuningServer
from repro.hardware import Emulator
from repro.objectives import AccuracyObjective, RatioObjective
from repro.storage import TrialDatabase
from repro.workloads import get_workload

SAMPLES = 240  # small but learnable


def make_server(**kwargs):
    defaults = dict(
        workload=get_workload("IC"),
        algorithm="bohb",
        budget=MultiBudget(min_epochs=1, max_epochs=4, min_fraction=0.25),
        objective=AccuracyObjective(),
        database=TrialDatabase(),
        seed=11,
        samples=SAMPLES,
        include_system_parameters=True,
    )
    defaults.update(kwargs)
    return ModelTuningServer(**defaults)


class TestModelServer:
    def test_full_run_produces_result(self):
        result = make_server().run()
        assert result.num_trials > 0
        assert 0.0 <= result.best_accuracy <= 1.0
        assert result.tuning_runtime_s > 0
        assert result.tuning_energy_j > 0
        assert result.best_model is not None

    def test_best_configuration_is_from_trials(self):
        result = make_server().run()
        assert any(
            record.configuration == result.best_configuration
            for record in result.trials
        )

    def test_deterministic(self):
        a = make_server().run()
        b = make_server().run()
        assert a.best_configuration == b.best_configuration
        assert a.tuning_runtime_s == pytest.approx(b.tuning_runtime_s)
        assert [r.accuracy for r in a.trials] == [
            r.accuracy for r in b.trials
        ]

    def test_trials_recorded_in_database(self):
        database = TrialDatabase()
        result = make_server(database=database,
                             system_name="unit-test").run()
        assert database.trial_count("unit-test:IC") == result.num_trials

    def test_max_trials_respected(self):
        result = make_server(max_trials=5).run()
        assert result.num_trials == 5

    def test_target_accuracy_stops_early(self):
        full = make_server().run()
        stopped = make_server(target_accuracy=0.3).run()
        assert stopped.num_trials <= full.num_trials

    def test_fixed_system_parameters(self):
        result = make_server(
            include_system_parameters=False, fixed_gpus=2
        ).run()
        assert "gpus" not in result.best_configuration
        assert all(record.training.gpus == 2 for record in result.trials)

    def test_makespan_below_serial_sum(self):
        """GPU-pool parallelism: the tuning runtime (makespan) must be
        well below the serial sum of trial durations."""
        result = make_server(include_system_parameters=False,
                             fixed_gpus=1).run()
        serial = sum(record.training.runtime_s for record in result.trials)
        assert result.tuning_runtime_s < serial

    def test_energy_is_sum_not_makespan(self):
        """Parallelism hides latency but never joules."""
        result = make_server(include_system_parameters=False,
                             fixed_gpus=1).run()
        total = sum(record.training.energy_j for record in result.trials)
        assert result.tuning_energy_j == pytest.approx(total)

    def test_budget_reflected_in_trials(self):
        budget = DatasetBudget(min_fraction=0.5)
        result = make_server(budget=budget).run()
        assert all(record.epochs == 1 for record in result.trials)
        assert {record.data_fraction for record in result.trials} <= {
            0.5, 1.0
        }


class TestEdgeTuneFacade:
    def run_edgetune(self, **kwargs):
        defaults = dict(workload="IC", seed=11, samples=SAMPLES,
                        max_trials=12)
        defaults.update(kwargs)
        return EdgeTune(**defaults).tune()

    def test_returns_inference_recommendation(self):
        result = self.run_edgetune()
        assert result.inference is not None
        configuration = result.inference.configuration
        assert "inference_batch_size" in configuration
        assert "cores" in configuration
        assert "frequency_ghz" in configuration
        assert result.inference.device == "armv7"

    def test_inference_measurements_attached_to_trials(self):
        result = self.run_edgetune()
        assert all(record.inference is not None for record in result.trials)

    def test_architecture_cache_reused_across_trials(self):
        """Only as many inference tunes as distinct architectures; the
        rest are cache hits with zero added runtime."""
        database = TrialDatabase()
        result = self.run_edgetune(database=database, max_trials=20)
        distinct_architectures = len(
            {
                tuple(
                    sorted(
                        (k, v)
                        for k, v in record.configuration.items()
                        if k == "num_layers"
                    )
                )
                for record in result.trials
            }
        )
        assert database.inference_cache_size() == distinct_architectures
        # At most 3 for ResNet {18, 34, 50}.
        assert distinct_architectures <= 3

    def test_budget_string_accepted(self):
        result = self.run_edgetune(budget="epochs", max_trials=6)
        assert all(record.data_fraction == 1.0 for record in result.trials)

    def test_energy_metric(self):
        result = self.run_edgetune(tuning_metric="energy",
                                   inference_metric="energy")
        assert result.inference.objective == "inference-energy"

    def test_different_device(self):
        result = self.run_edgetune(device="i7nuc")
        assert result.inference.device == "i7nuc"

    def test_stall_accounting_nonnegative(self):
        result = self.run_edgetune()
        assert result.stall_s >= 0.0
        assert all(record.stall_s >= 0.0 for record in result.trials)
