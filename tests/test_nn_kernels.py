"""Gradient-equivalence tests for the vectorized NN kernels.

The ``fast`` backend in :mod:`repro.nn.kernels` must be *bit-identical*
to the ``reference`` (``np.add.at`` / two-pass) backend — the tuning
results in storage were produced with seeded training and must not move
by even an ulp.  These tests pin that contract with hypothesis over
randomized shapes, strides and values, at both the kernel and the layer
level, and additionally anchor the convolution gradient to finite
differences.  Regression tests for the trainer's trial-accounting fixes
(epochs_run on divergence, final_loss on empty training sets) and the
meter thread-safety contract ride along.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.datasets import make_cifar10
from repro.datasets.base import Dataset
from repro.errors import ConfigurationError
from repro.nn import CrossEntropyLoss, train_model, use_backend
from repro.nn.conv import Conv1d, Conv2d, MaxPool1d, MaxPool2d
from repro.nn import kernels
from repro.nn.models import get_model_family
from repro.telemetry.meters import MeterRegistry


@pytest.fixture(autouse=True)
def clean_faults():
    faults.reset()
    yield
    faults.reset()


def both_backends(fn):
    """Run ``fn()`` under each backend and return the two results."""
    with use_backend("fast"):
        fast = fn()
    with use_backend("reference"):
        reference = fn()
    return fast, reference


def assert_bit_identical(fast, reference):
    """The equivalence contract: not just ≤1e-10 close, but equal bits."""
    fast = np.asarray(fast)
    reference = np.asarray(reference)
    assert fast.shape == reference.shape
    assert fast.dtype == reference.dtype
    np.testing.assert_allclose(fast, reference, rtol=0, atol=1e-10)
    assert np.array_equal(fast, reference)


def assert_grad_equivalent(fast, reference):
    """Conv input gradients include a gemm; numpy may route the fast
    path's flattened gemm and the reference's batched ``@`` to different
    inner kernels depending on shape, so the per-kernel guarantee is
    ≤1e-10, not equal bits.  End-to-end seeded training on the repo's
    workloads is still bit-identical across backends — pinned by
    ``test_training_is_bit_identical_across_backends`` below."""
    fast = np.asarray(fast)
    reference = np.asarray(reference)
    assert fast.shape == reference.shape
    assert fast.dtype == reference.dtype
    np.testing.assert_allclose(fast, reference, rtol=1e-12, atol=1e-10)


# ---------------------------------------------------------------------------
# Kernel-level equivalence (randomized shapes, strides and values)
# ---------------------------------------------------------------------------

conv1d_cases = st.tuples(
    st.integers(1, 4),   # batch
    st.integers(1, 4),   # channels
    st.integers(1, 5),   # out_channels
    st.integers(1, 6),   # kernel
    st.integers(1, 4),   # stride
    st.integers(0, 9),   # extra length beyond the kernel
    st.integers(0, 2**31 - 1),
)


@given(case=conv1d_cases)
@settings(max_examples=60, deadline=None)
def test_property_conv1d_kernels_match_reference(case):
    batch, channels, out_channels, kernel, stride, extra, seed = case
    length = kernel + extra
    out_len = (length - kernel) // stride + 1
    rng = np.random.default_rng(seed)
    inputs = rng.normal(size=(batch, channels, length))
    weight = rng.normal(size=(channels * kernel, out_channels))
    grad_out = rng.normal(size=(batch, out_len, out_channels))

    cols_fast, cols_ref = both_backends(
        lambda: kernels.im2col_1d(inputs, kernel, stride, out_len)
    )
    assert_bit_identical(cols_fast, cols_ref)

    grad_fast, grad_ref = both_backends(
        lambda: kernels.conv1d_input_grad(
            grad_out, weight, inputs.shape, kernel, stride, {}
        ).copy()
    )
    assert_grad_equivalent(grad_fast, grad_ref)


conv2d_cases = st.tuples(
    st.integers(1, 3),   # batch
    st.integers(1, 3),   # channels
    st.integers(1, 4),   # out_channels
    st.integers(1, 4),   # kernel
    st.integers(1, 3),   # stride
    st.integers(0, 5),   # extra height
    st.integers(0, 5),   # extra width
    st.integers(0, 2**31 - 1),
)


@given(case=conv2d_cases)
@settings(max_examples=60, deadline=None)
def test_property_conv2d_kernels_match_reference(case):
    batch, channels, out_channels, kernel, stride, eh, ew, seed = case
    height, width = kernel + eh, kernel + ew
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    rng = np.random.default_rng(seed)
    inputs = rng.normal(size=(batch, channels, height, width))
    weight = rng.normal(size=(channels * kernel * kernel, out_channels))
    grad_out = rng.normal(size=(batch, out_h * out_w, out_channels))

    cols_fast, cols_ref = both_backends(
        lambda: kernels.im2col_2d(inputs, kernel, stride, out_h, out_w)
    )
    assert_bit_identical(cols_fast, cols_ref)

    grad_fast, grad_ref = both_backends(
        lambda: kernels.conv2d_input_grad(
            grad_out, weight, inputs.shape, out_h, out_w, kernel, stride, {}
        ).copy()
    )
    assert_grad_equivalent(grad_fast, grad_ref)


pool1d_cases = st.tuples(
    st.integers(1, 4),   # batch
    st.integers(1, 4),   # channels
    st.integers(1, 6),   # out_len
    st.sampled_from([2, 3, 4, 5]),  # kernel (2 and 4 hit the fused paths)
    st.integers(0, 2**31 - 1),
    st.booleans(),       # quantize values to force ties
)


@given(case=pool1d_cases)
@settings(max_examples=60, deadline=None)
def test_property_maxpool1d_kernels_match_reference(case):
    batch, channels, out_len, kernel, seed, quantize = case
    rng = np.random.default_rng(seed)
    if quantize:
        # Few distinct values => many tied windows; tie-breaking (first
        # maximum wins) must agree between the backends.
        windows = rng.integers(0, 3, size=(batch, channels, out_len, kernel))
        windows = windows.astype(np.float64)
    else:
        windows = rng.normal(size=(batch, channels, out_len, kernel))
    (max_f, arg_f), (max_r, arg_r) = both_backends(
        lambda: kernels.maxpool_forward(windows)
    )
    assert_bit_identical(max_f, max_r)
    assert np.array_equal(arg_f, arg_r)

    grad_out = rng.normal(size=(batch, channels, out_len))
    input_shape = (batch, channels, out_len * kernel + rng.integers(0, kernel))
    grad_fast, grad_ref = both_backends(
        lambda: kernels.maxpool1d_backward(
            grad_out, input_shape, out_len, kernel, arg_r
        )
    )
    assert_bit_identical(grad_fast, grad_ref)


pool2d_cases = st.tuples(
    st.integers(1, 3),   # batch
    st.integers(1, 3),   # channels
    st.integers(1, 4),   # out_h
    st.integers(1, 4),   # out_w
    st.sampled_from([2, 3]),  # kernel (2 hits the no-copy fused path)
    st.integers(0, 2**31 - 1),
    st.booleans(),
)


@given(case=pool2d_cases)
@settings(max_examples=60, deadline=None)
def test_property_maxpool2d_kernels_match_reference(case):
    batch, channels, out_h, out_w, kernel, seed, quantize = case
    rng = np.random.default_rng(seed)
    shape = (batch, channels, out_h * kernel, out_w * kernel)
    if quantize:
        trimmed = rng.integers(0, 3, size=shape).astype(np.float64)
    else:
        trimmed = rng.normal(size=shape)
    (max_f, arg_f), (max_r, arg_r) = both_backends(
        lambda: kernels.maxpool2d_forward(trimmed, kernel)
    )
    assert_bit_identical(max_f, max_r)
    assert np.array_equal(arg_f, arg_r)

    grad_out = rng.normal(size=(batch, channels, out_h, out_w))
    input_shape = (
        batch, channels,
        out_h * kernel + rng.integers(0, kernel),
        out_w * kernel + rng.integers(0, kernel),
    )
    grad_fast, grad_ref = both_backends(
        lambda: kernels.maxpool2d_backward(
            grad_out, input_shape, out_h, out_w, kernel, arg_r
        )
    )
    assert_bit_identical(grad_fast, grad_ref)


def test_maxpool2d_fused_path_handles_sliced_input():
    """The K=2 fast path reshapes a *trimmed* (sliced) input — the axis
    split must view, not copy, and still agree with the reference."""
    rng = np.random.default_rng(7)
    inputs = rng.normal(size=(2, 3, 5, 7))  # odd extent forces trimming
    trimmed = inputs[:, :, :4, :6]
    (max_f, arg_f), (max_r, arg_r) = both_backends(
        lambda: kernels.maxpool2d_forward(trimmed, 2)
    )
    assert_bit_identical(max_f, max_r)
    assert np.array_equal(arg_f, arg_r)


# ---------------------------------------------------------------------------
# Layer-level equivalence: full forward/backward through the conv layers
# ---------------------------------------------------------------------------

def _layer_roundtrip(make_layer, inputs, grad_seed):
    layer = make_layer()
    out = layer.forward(inputs)
    grad_out = np.random.default_rng(grad_seed).normal(size=out.shape)
    grad_in = layer.backward(grad_out).copy()
    grads = [p.grad.copy() for p in layer.parameters()]
    return out.copy(), grad_in, grads


@given(seed=st.integers(0, 2**31 - 1), stride=st.integers(1, 3))
@settings(max_examples=25, deadline=None)
def test_property_conv1d_layer_backends_agree(seed, stride):
    rng = np.random.default_rng(seed)
    inputs = rng.normal(size=(3, 2, 17))
    run = lambda: _layer_roundtrip(
        lambda: Conv1d(2, 4, 5, stride=stride, rng=seed), inputs, seed
    )
    (out_f, gin_f, pg_f), (out_r, gin_r, pg_r) = both_backends(run)
    assert_bit_identical(out_f, out_r)
    assert_bit_identical(gin_f, gin_r)
    for grad_fast, grad_ref in zip(pg_f, pg_r):
        assert_bit_identical(grad_fast, grad_ref)


@given(seed=st.integers(0, 2**31 - 1), stride=st.integers(1, 2))
@settings(max_examples=25, deadline=None)
def test_property_conv2d_layer_backends_agree(seed, stride):
    rng = np.random.default_rng(seed)
    inputs = rng.normal(size=(2, 3, 9, 8))
    run = lambda: _layer_roundtrip(
        lambda: Conv2d(3, 4, 3, stride=stride, rng=seed), inputs, seed
    )
    (out_f, gin_f, pg_f), (out_r, gin_r, pg_r) = both_backends(run)
    assert_bit_identical(out_f, out_r)
    assert_bit_identical(gin_f, gin_r)
    for grad_fast, grad_ref in zip(pg_f, pg_r):
        assert_bit_identical(grad_fast, grad_ref)


@given(seed=st.integers(0, 2**31 - 1), kernel=st.integers(2, 4))
@settings(max_examples=25, deadline=None)
def test_property_pool_layers_backends_agree(seed, kernel):
    rng = np.random.default_rng(seed)
    inputs1d = rng.normal(size=(3, 2, 13))
    inputs2d = rng.normal(size=(2, 3, 9, 10))
    for make_layer, inputs in [
        (lambda: MaxPool1d(kernel), inputs1d),
        (lambda: MaxPool2d(kernel), inputs2d),
    ]:
        run = lambda: _layer_roundtrip(make_layer, inputs, seed)
        (out_f, gin_f, _), (out_r, gin_r, _) = both_backends(run)
        assert_bit_identical(out_f, out_r)
        assert_bit_identical(gin_f, gin_r)


def test_conv1d_gradient_matches_finite_differences():
    """Anchor the fast input gradient to first principles, not just to
    the reference implementation."""
    rng = np.random.default_rng(3)
    layer = Conv1d(2, 3, 4, stride=2, rng=1)
    inputs = rng.normal(size=(2, 2, 11))
    out = layer.forward(inputs)
    grad_out = rng.normal(size=out.shape)
    grad_in = layer.backward(grad_out).copy()

    eps = 1e-6
    for index in [(0, 0, 0), (1, 1, 5), (0, 1, 10), (1, 0, 7)]:
        bumped = inputs.copy()
        bumped[index] += eps
        plus = (layer.forward(bumped) * grad_out).sum()
        bumped[index] -= 2 * eps
        minus = (layer.forward(bumped) * grad_out).sum()
        numeric = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(grad_in[index], numeric, atol=1e-5)


# ---------------------------------------------------------------------------
# Backend plumbing
# ---------------------------------------------------------------------------

def test_backend_default_is_fast():
    assert kernels.get_backend() == "fast"


def test_use_backend_restores_previous_backend_on_error():
    with pytest.raises(RuntimeError):
        with use_backend("reference"):
            assert kernels.get_backend() == "reference"
            raise RuntimeError("boom")
    assert kernels.get_backend() == "fast"


def test_unknown_backend_is_rejected():
    with pytest.raises(ConfigurationError):
        kernels.set_backend("cuda")
    with pytest.raises(ConfigurationError):
        with use_backend("turbo"):
            pass  # pragma: no cover


def test_training_is_bit_identical_across_backends():
    """End to end: one seeded M5 training run must produce the same loss
    trajectory and accuracy on both backends."""
    from repro.datasets import make_speech_commands
    from repro.nn.models import build_m5

    dataset = make_speech_commands(samples=96, length=128, seed=2)
    train, test = dataset.split(0.25, rng=0)

    def run():
        model = build_m5(train.sample_shape, train.num_classes, seed=3)
        return train_model(
            model, CrossEntropyLoss(), train, test,
            epochs=2, batch_size=16, lr=0.01, seed=5,
        )

    with use_backend("fast"):
        fast = run()
    with use_backend("reference"):
        reference = run()
    assert fast.losses == reference.losses
    assert fast.accuracy == reference.accuracy


# ---------------------------------------------------------------------------
# Trainer trial-accounting regressions
# ---------------------------------------------------------------------------

class TestEpochsRunAccounting:
    def _train(self, epochs):
        dataset = make_cifar10(samples=128, seed=1)
        train, test = dataset.split(0.25, rng=0)
        family = get_model_family("resnet")
        model = family.instantiate(
            dataset.sample_shape, dataset.num_classes, seed=3
        )
        return train_model(
            model, family.make_loss(dataset.num_classes), train, test,
            epochs=epochs, batch_size=32, lr=0.05, seed=5,
        )

    def test_diverged_run_reports_completed_epochs_only(self):
        # trainer.nan corrupts the first batch, so epoch 0 never finishes:
        # the result must not claim the requested 3 epochs were run.
        faults.configure("seed=1;trainer.nan=1.0", propagate=False)
        result = self._train(epochs=3)
        assert result.diverged
        assert result.epochs_run == 0
        assert result.losses == []

    def test_healthy_run_reports_requested_epochs(self):
        result = self._train(epochs=2)
        assert not result.diverged
        assert result.epochs_run == 2
        assert len(result.losses) == 2

    def test_empty_training_set_yields_none_final_loss(self):
        base = make_cifar10(samples=64, seed=1)
        empty_train = Dataset(
            name="empty",
            features=np.zeros((0,) + base.sample_shape),
            targets=np.zeros((0,), dtype=np.int64),
            num_classes=base.num_classes,
        )
        family = get_model_family("resnet")
        model = family.instantiate(base.sample_shape, base.num_classes, seed=3)
        result = train_model(
            model, family.make_loss(base.num_classes), empty_train, base,
            epochs=2, batch_size=16, lr=0.05, seed=5,
        )
        # Zero batches ran: epochs still "complete" (vacuously) but there
        # is no loss to report — final_loss must be None, not 0.0.
        assert result.samples_seen == 0
        assert result.losses == []
        assert result.final_loss is None
        assert not result.diverged


# ---------------------------------------------------------------------------
# Meter thread-safety
# ---------------------------------------------------------------------------

class TestMeterThreadSafety:
    THREADS = 8
    ITERATIONS = 2000

    def _hammer(self, work):
        threads = [
            threading.Thread(target=work) for _ in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_concurrent_counter_increments_are_not_lost(self):
        registry = MeterRegistry()

        def work():
            for _ in range(self.ITERATIONS):
                registry.counter("jobs").inc()

        self._hammer(work)
        assert registry.counter("jobs").value == self.THREADS * self.ITERATIONS

    def test_concurrent_meter_records_are_not_lost(self):
        registry = MeterRegistry()

        def work():
            for value in range(self.ITERATIONS):
                registry.meter("latency").record(float(value))

        self._hammer(work)
        summary = registry.meter("latency").summary()
        assert summary is not None
        assert summary.count == self.THREADS * self.ITERATIONS

    def test_registry_returns_one_instrument_per_name_under_races(self):
        registry = MeterRegistry()
        seen = []
        lock = threading.Lock()

        def work():
            counter = registry.counter("shared")
            with lock:
                seen.append(counter)

        self._hammer(work)
        assert all(counter is seen[0] for counter in seen)

    def test_snapshot_while_recording_does_not_crash(self):
        registry = MeterRegistry()
        stop = threading.Event()

        def record():
            while not stop.is_set():
                registry.meter("wave").record(1.0)
                registry.counter("ticks").inc()

        recorder = threading.Thread(target=record)
        recorder.start()
        try:
            for _ in range(200):
                snapshot = registry.snapshot()
                assert isinstance(snapshot, dict)
        finally:
            stop.set()
            recorder.join()
