"""Gradient and behaviour tests for the NN engine's layers.

Every layer's backward pass is checked against central finite differences
— the strongest correctness evidence a hand-written backprop engine can
have.
"""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import (
    BatchNorm1d,
    Conv1d,
    Conv2d,
    Dropout,
    ElmanRNN,
    Flatten,
    GlobalAvgPool1d,
    GlobalAvgPool2d,
    Linear,
    MaxPool1d,
    MaxPool2d,
    ReLU,
    Residual,
    SequenceStride,
    Sequential,
    Tanh,
)

RNG = np.random.default_rng(1234)
EPS = 1e-6


def numeric_gradient(fn, array, eps=EPS):
    """Central-difference gradient of scalar fn w.r.t. array."""
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn()
        flat[i] = original - eps
        minus = fn()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_input_gradient(layer, inputs, atol=1e-6):
    """Compare layer.backward against numeric input gradient of sum(out)."""
    inputs = np.asarray(inputs, dtype=np.float64)

    def loss():
        return layer.forward(inputs).sum()

    numeric = numeric_gradient(loss, inputs)
    layer.forward(inputs)
    analytic = layer.backward(np.ones_like(layer.forward(inputs)))
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-4)


def check_param_gradients(layer, inputs, atol=1e-6):
    """Compare parameter gradients against numeric differentiation."""
    inputs = np.asarray(inputs, dtype=np.float64)
    for parameter in layer.parameters():
        def loss():
            return layer.forward(inputs).sum()

        numeric = numeric_gradient(loss, parameter.value)
        layer.zero_grad()
        out = layer.forward(inputs)
        layer.backward(np.ones_like(out))
        np.testing.assert_allclose(
            parameter.grad, numeric, atol=atol, rtol=1e-4,
            err_msg=f"parameter {parameter.name}",
        )


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, rng=0)
        assert layer.forward(RNG.normal(size=(5, 4))).shape == (5, 3)

    def test_input_gradient(self):
        check_input_gradient(Linear(4, 3, rng=0), RNG.normal(size=(3, 4)))

    def test_param_gradients(self):
        check_param_gradients(Linear(4, 3, rng=0), RNG.normal(size=(3, 4)))

    def test_wrong_features_rejected(self):
        with pytest.raises(ShapeError):
            Linear(4, 3, rng=0).forward(RNG.normal(size=(2, 5)))

    def test_backward_before_forward_rejected(self):
        with pytest.raises(ShapeError):
            Linear(4, 3, rng=0).backward(np.ones((2, 3)))

    def test_flops_count(self):
        flops, shape = Linear(4, 3, rng=0).flops((4,))
        assert shape == (3,)
        assert flops == 2 * 4 * 3 + 3


class TestActivations:
    def test_relu_gradient(self):
        check_input_gradient(ReLU(), RNG.normal(size=(4, 6)) + 0.1)

    def test_relu_zeroes_negatives(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_tanh_gradient(self):
        check_input_gradient(Tanh(), RNG.normal(size=(4, 6)))


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5, rng=0)
        layer.training = False
        x = RNG.normal(size=(4, 8))
        np.testing.assert_array_equal(layer.forward(x), x)

    def test_training_mode_scales(self):
        layer = Dropout(0.5, rng=0)
        x = np.ones((1000, 10))
        out = layer.forward(x)
        # Inverted dropout preserves the expectation.
        assert abs(out.mean() - 1.0) < 0.1
        # Some units are dropped.
        assert (out == 0).any()

    def test_invalid_rate_rejected(self):
        with pytest.raises(ShapeError):
            Dropout(1.0)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, rng=0)
        x = np.ones((10, 10))
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(out))
        np.testing.assert_array_equal((out == 0), (grad == 0))


class TestBatchNorm:
    def test_normalises_batch(self):
        layer = BatchNorm1d(4)
        x = RNG.normal(3.0, 2.0, size=(64, 4))
        out = layer.forward(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_input_gradient(self):
        check_input_gradient(
            BatchNorm1d(3), RNG.normal(size=(5, 3)), atol=1e-5
        )

    def test_param_gradients(self):
        check_param_gradients(BatchNorm1d(3), RNG.normal(size=(5, 3)))

    def test_eval_uses_running_stats(self):
        layer = BatchNorm1d(2, momentum=1.0)
        x = RNG.normal(5.0, 1.0, size=(128, 2))
        layer.forward(x)
        layer.training = False
        out = layer.forward(x)
        assert abs(out.mean()) < 0.2


class TestConv1d:
    def test_output_shape(self):
        layer = Conv1d(2, 5, kernel_size=3, stride=2, rng=0)
        out = layer.forward(RNG.normal(size=(4, 2, 11)))
        assert out.shape == (4, 5, 5)

    def test_input_gradient(self):
        check_input_gradient(
            Conv1d(2, 3, kernel_size=3, stride=2, rng=0),
            RNG.normal(size=(2, 2, 9)),
        )

    def test_param_gradients(self):
        check_param_gradients(
            Conv1d(2, 3, kernel_size=3, rng=0), RNG.normal(size=(2, 2, 7))
        )

    def test_flops_matches_shape(self):
        layer = Conv1d(2, 5, kernel_size=3, stride=2, rng=0)
        flops, shape = layer.flops((2, 11))
        assert shape == (5, 5)
        assert flops > 0


class TestConv2d:
    def test_output_shape(self):
        layer = Conv2d(3, 4, kernel_size=3, rng=0)
        out = layer.forward(RNG.normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 4, 6, 6)

    def test_input_gradient(self):
        check_input_gradient(
            Conv2d(2, 3, kernel_size=2, stride=2, rng=0),
            RNG.normal(size=(2, 2, 6, 6)),
        )

    def test_param_gradients(self):
        check_param_gradients(
            Conv2d(2, 2, kernel_size=3, rng=0), RNG.normal(size=(2, 2, 5, 5))
        )


class TestPooling:
    def test_maxpool1d_values(self):
        layer = MaxPool1d(2)
        out = layer.forward(np.array([[[1.0, 3.0, 2.0, 5.0]]]))
        np.testing.assert_array_equal(out, [[[3.0, 5.0]]])

    def test_maxpool1d_gradient(self):
        check_input_gradient(MaxPool1d(2), RNG.normal(size=(2, 3, 8)))

    def test_maxpool2d_gradient(self):
        check_input_gradient(MaxPool2d(2), RNG.normal(size=(2, 2, 6, 6)))

    def test_gap1d_gradient(self):
        check_input_gradient(GlobalAvgPool1d(), RNG.normal(size=(3, 4, 6)))

    def test_gap2d_gradient(self):
        check_input_gradient(GlobalAvgPool2d(), RNG.normal(size=(2, 3, 4, 4)))


class TestRecurrent:
    def test_rnn_output_shape(self):
        layer = ElmanRNN(5, 7, rng=0)
        assert layer.forward(RNG.normal(size=(3, 6, 5))).shape == (3, 7)

    def test_rnn_input_gradient(self):
        check_input_gradient(
            ElmanRNN(3, 4, rng=0), RNG.normal(size=(2, 5, 3)), atol=1e-5
        )

    def test_rnn_param_gradients(self):
        check_param_gradients(
            ElmanRNN(3, 4, rng=0), RNG.normal(size=(2, 4, 3)), atol=1e-5
        )

    def test_stride_subsamples(self):
        layer = SequenceStride(3)
        out = layer.forward(RNG.normal(size=(2, 10, 4)))
        assert out.shape == (2, 4, 4)

    def test_stride_gradient(self):
        check_input_gradient(SequenceStride(2), RNG.normal(size=(2, 7, 3)))


class TestComposite:
    def test_residual_gradient(self):
        inner = Sequential(Linear(4, 4, rng=0), ReLU(), Linear(4, 4, rng=1))
        check_input_gradient(Residual(inner), RNG.normal(size=(3, 4)))

    def test_residual_requires_matching_shapes(self):
        block = Residual(Linear(4, 3, rng=0))
        with pytest.raises(ShapeError):
            block.flops((4,))

    def test_sequential_gradient(self):
        model = Sequential(
            Flatten(), Linear(12, 6, rng=0), Tanh(), Linear(6, 2, rng=1)
        )
        check_input_gradient(model, RNG.normal(size=(2, 3, 4)))

    def test_sequential_flops_accumulate(self):
        model = Sequential(Linear(4, 8, rng=0), ReLU(), Linear(8, 2, rng=1))
        flops, shape = model.flops((4,))
        assert shape == (2,)
        assert flops == (2 * 4 * 8 + 8) + 8 + (2 * 8 * 2 + 2)

    def test_train_eval_propagates(self):
        drop = Dropout(0.5, rng=0)
        model = Sequential(Linear(4, 4, rng=0), drop)
        model.eval()
        assert drop.training is False
        model.train()
        assert drop.training is True

    def test_parameter_count(self):
        model = Sequential(Linear(4, 3, rng=0))
        assert model.parameter_count() == 4 * 3 + 3
