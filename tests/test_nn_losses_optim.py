"""Tests for losses, optimizers and LR schedules."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn import (
    SGD,
    Adam,
    ConstantLR,
    CosineLR,
    CrossEntropyLoss,
    DetectionLoss,
    Linear,
    MSELoss,
    StepDecayLR,
    build_optimizer,
    softmax,
)

RNG = np.random.default_rng(7)


def numeric_loss_gradient(loss, predictions, targets, eps=1e-6):
    grad = np.zeros_like(predictions)
    flat = predictions.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = loss.forward(predictions, targets)
        flat[i] = original - eps
        minus = loss.forward(predictions, targets)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


class TestSoftmax:
    def test_rows_sum_to_one(self):
        probabilities = softmax(RNG.normal(size=(5, 4)))
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)

    def test_numerically_stable(self):
        probabilities = softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(probabilities, [[0.5, 0.5]])


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss = CrossEntropyLoss()
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        assert loss.forward(logits, np.array([0, 1])) < 1e-4

    def test_uniform_prediction_log_k(self):
        loss = CrossEntropyLoss()
        logits = np.zeros((4, 10))
        value = loss.forward(logits, np.zeros(4, dtype=int))
        assert value == pytest.approx(np.log(10))

    def test_gradient_matches_numeric(self):
        loss = CrossEntropyLoss()
        logits = RNG.normal(size=(3, 5))
        targets = np.array([0, 2, 4])
        numeric = numeric_loss_gradient(loss, logits, targets)
        loss.forward(logits, targets)
        np.testing.assert_allclose(loss.backward(), numeric, atol=1e-6)

    def test_shape_validation(self):
        loss = CrossEntropyLoss()
        with pytest.raises(ShapeError):
            loss.forward(np.zeros((3, 2)), np.zeros(4, dtype=int))


class TestMSE:
    def test_zero_for_exact(self):
        loss = MSELoss()
        x = RNG.normal(size=(3, 2))
        assert loss.forward(x, x.copy()) == 0.0

    def test_gradient_matches_numeric(self):
        loss = MSELoss()
        predictions = RNG.normal(size=(4, 3))
        targets = RNG.normal(size=(4, 3))
        numeric = numeric_loss_gradient(loss, predictions, targets)
        loss.forward(predictions, targets)
        np.testing.assert_allclose(loss.backward(), numeric, atol=1e-6)


class TestDetectionLoss:
    def make_data(self, n=4, classes=6):
        predictions = RNG.normal(size=(n, 4 + classes))
        targets = np.zeros((n, 5))
        targets[:, :4] = RNG.uniform(0, 1, size=(n, 4))
        targets[:, 4] = RNG.integers(classes, size=n)
        return predictions, targets

    def test_gradient_matches_numeric(self):
        loss = DetectionLoss(num_classes=6)
        predictions, targets = self.make_data()
        numeric = numeric_loss_gradient(loss, predictions, targets)
        loss.forward(predictions, targets)
        np.testing.assert_allclose(loss.backward(), numeric, atol=1e-6)

    def test_box_weight_scales_box_term(self):
        predictions, targets = self.make_data()
        light = DetectionLoss(6, box_weight=0.0).forward(
            predictions, targets
        )
        heavy = DetectionLoss(6, box_weight=10.0).forward(
            predictions, targets
        )
        assert heavy > light

    def test_shape_validation(self):
        loss = DetectionLoss(num_classes=6)
        with pytest.raises(ShapeError):
            loss.forward(np.zeros((2, 9)), np.zeros((2, 5)))  # 4+6=10 != 9


class TestSGD:
    def test_plain_step(self):
        layer = Linear(2, 1, rng=0)
        layer.weight.grad[:] = 1.0
        before = layer.weight.value.copy()
        SGD([layer.weight, layer.bias], lr=0.1).step()
        np.testing.assert_allclose(layer.weight.value, before - 0.1)

    def test_momentum_accumulates(self):
        layer = Linear(1, 1, rng=0)
        optimizer = SGD([layer.weight], lr=0.1, momentum=0.9)
        layer.weight.grad[:] = 1.0
        optimizer.step()
        first_move = -0.1
        layer.weight.grad[:] = 1.0
        before = layer.weight.value.copy()
        optimizer.step()
        second_move = layer.weight.value - before
        assert second_move[0, 0] == pytest.approx(
            0.9 * first_move - 0.1
        )

    def test_weight_decay_shrinks(self):
        layer = Linear(1, 1, rng=0)
        layer.weight.value[:] = 2.0
        layer.weight.grad[:] = 0.0
        SGD([layer.weight], lr=0.1, weight_decay=0.5).step()
        assert layer.weight.value[0, 0] == pytest.approx(2.0 - 0.1 * 0.5 * 2.0)

    def test_minimises_quadratic(self):
        from repro.nn.module import ParamTensor

        parameter = ParamTensor("x", np.array([5.0]))
        optimizer = SGD([parameter], lr=0.1, momentum=0.5)
        for _ in range(100):
            parameter.zero_grad()
            parameter.grad[:] = 2 * parameter.value  # d/dx x^2
            optimizer.step()
        assert abs(parameter.value[0]) < 1e-3

    def test_invalid_hyperparameters(self):
        layer = Linear(1, 1, rng=0)
        with pytest.raises(ConfigurationError):
            SGD([layer.weight], lr=0.0)
        with pytest.raises(ConfigurationError):
            SGD([layer.weight], lr=0.1, momentum=1.0)
        with pytest.raises(ConfigurationError):
            SGD([layer.weight], lr=0.1, weight_decay=-1.0)


class TestAdam:
    def test_minimises_quadratic(self):
        from repro.nn.module import ParamTensor

        parameter = ParamTensor("x", np.array([3.0]))
        optimizer = Adam([parameter], lr=0.2)
        for _ in range(200):
            parameter.zero_grad()
            parameter.grad[:] = 2 * parameter.value
            optimizer.step()
        assert abs(parameter.value[0]) < 1e-2

    def test_invalid_betas(self):
        layer = Linear(1, 1, rng=0)
        with pytest.raises(ConfigurationError):
            Adam([layer.weight], beta1=1.0)


class TestSchedules:
    def test_constant(self):
        assert ConstantLR().rate(50, 0.1) == 0.1

    def test_step_decay(self):
        schedule = StepDecayLR(step_size=10, gamma=0.5)
        assert schedule.rate(0, 0.1) == 0.1
        assert schedule.rate(10, 0.1) == pytest.approx(0.05)
        assert schedule.rate(25, 0.1) == pytest.approx(0.025)

    def test_cosine_endpoints(self):
        schedule = CosineLR(total_epochs=10, min_lr=0.01)
        assert schedule.rate(0, 0.1) == pytest.approx(0.1)
        assert schedule.rate(10, 0.1) == pytest.approx(0.01)
        assert 0.01 < schedule.rate(5, 0.1) < 0.1


class TestOptimizerRegistry:
    def test_build_by_name(self):
        layer = Linear(1, 1, rng=0)
        assert isinstance(build_optimizer("sgd", [layer.weight]), SGD)
        assert isinstance(build_optimizer("ADAM", [layer.weight]), Adam)

    def test_unknown(self):
        layer = Linear(1, 1, rng=0)
        with pytest.raises(ConfigurationError):
            build_optimizer("lion", [layer.weight])
