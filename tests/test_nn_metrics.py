"""Tests for the extended evaluation metrics."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.metrics import (
    box_iou,
    confusion_matrix,
    macro_f1,
    precision_recall,
    top_k_accuracy,
)


class TestTopK:
    def test_top1_equals_argmax_accuracy(self):
        logits = np.array([[3.0, 1.0], [0.0, 2.0], [5.0, 4.0]])
        targets = np.array([0, 1, 1])
        assert top_k_accuracy(logits, targets, k=1) == pytest.approx(2 / 3)

    def test_top_k_monotone_in_k(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(50, 10))
        targets = rng.integers(10, size=50)
        values = [top_k_accuracy(logits, targets, k) for k in (1, 3, 5, 10)]
        assert values == sorted(values)
        assert values[-1] == 1.0  # k = num_classes

    def test_invalid_k(self):
        with pytest.raises(ShapeError):
            top_k_accuracy(np.zeros((2, 3)), np.zeros(2, dtype=int), k=4)


class TestConfusionMatrix:
    def test_counts(self):
        matrix = confusion_matrix(
            predictions=np.array([0, 1, 1, 2]),
            targets=np.array([0, 1, 2, 2]),
            num_classes=3,
        )
        assert matrix[0, 0] == 1
        assert matrix[1, 1] == 1
        assert matrix[2, 1] == 1
        assert matrix[2, 2] == 1
        assert matrix.sum() == 4

    def test_out_of_range_rejected(self):
        with pytest.raises(ShapeError):
            confusion_matrix(np.array([3]), np.array([0]), num_classes=3)


class TestPrecisionRecallF1:
    def test_perfect_classifier(self):
        matrix = np.diag([5, 3, 2])
        precision, recall = precision_recall(matrix)
        np.testing.assert_allclose(precision, 1.0)
        np.testing.assert_allclose(recall, 1.0)
        assert macro_f1(matrix) == pytest.approx(1.0)

    def test_empty_class_gives_zero_not_nan(self):
        matrix = np.array([[2, 0], [0, 0]])
        precision, recall = precision_recall(matrix)
        assert precision[1] == 0.0 and recall[1] == 0.0
        assert np.isfinite(macro_f1(matrix))

    def test_known_values(self):
        # class 0: tp=2, fp=1, fn=1 -> p=2/3, r=2/3
        matrix = np.array([[2, 1], [1, 3]])
        precision, recall = precision_recall(matrix)
        assert precision[0] == pytest.approx(2 / 3)
        assert recall[0] == pytest.approx(2 / 3)


class TestBoxIoU:
    def test_identical_boxes(self):
        boxes = np.array([[0.5, 0.5, 0.2, 0.2]])
        np.testing.assert_allclose(box_iou(boxes, boxes), 1.0)

    def test_disjoint_boxes(self):
        a = np.array([[0.2, 0.2, 0.1, 0.1]])
        b = np.array([[0.8, 0.8, 0.1, 0.1]])
        np.testing.assert_allclose(box_iou(a, b), 0.0)

    def test_half_overlap(self):
        a = np.array([[0.5, 0.5, 0.2, 0.2]])
        b = np.array([[0.6, 0.5, 0.2, 0.2]])  # shifted by half a width
        iou = box_iou(a, b)[0]
        assert iou == pytest.approx(1 / 3)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            box_iou(np.zeros((2, 4)), np.zeros((3, 4)))
