"""Tests for the model zoo and the budgeted trainer."""

import numpy as np
import pytest

from repro.datasets import (
    make_agnews,
    make_cifar10,
    make_coco,
    make_speech_commands,
)
from repro.errors import BudgetError, ConfigurationError, WorkloadError
from repro.nn import evaluate_accuracy, train_model
from repro.nn.models import (
    M5_EMBEDDING_CHOICES,
    MODEL_FAMILIES,
    RESNET_LAYER_CHOICES,
    build_m5,
    build_resnet,
    build_textrnn,
    build_yolo,
    get_model_family,
    model_names,
    residual_blocks_for,
)


class TestResNet:
    def test_depth_orders_flops_and_params(self):
        """The tunable num_layers must order compute: 18 < 34 < 50."""
        flops, params = [], []
        for layers in RESNET_LAYER_CHOICES:
            model = build_resnet((3, 8, 8), 10, num_layers=layers, seed=0)
            f, shape = model.flops((3, 8, 8))
            assert shape == (10,)
            flops.append(f)
            params.append(model.parameter_count())
        assert flops == sorted(flops)
        assert params == sorted(params)

    def test_blocks_mapping(self):
        assert residual_blocks_for(18) < residual_blocks_for(34)
        assert residual_blocks_for(34) < residual_blocks_for(50)

    def test_forward_shape(self):
        model = build_resnet((3, 8, 8), 10, seed=0)
        out = model.forward(np.random.default_rng(0).normal(size=(4, 3, 8, 8)))
        assert out.shape == (4, 10)

    def test_invalid_depth(self):
        with pytest.raises(ConfigurationError):
            build_resnet((3, 8, 8), 10, num_layers=0)

    def test_deterministic_construction(self):
        a = build_resnet((3, 8, 8), 10, seed=5)
        b = build_resnet((3, 8, 8), 10, seed=5)
        np.testing.assert_array_equal(
            a.parameters()[0].value, b.parameters()[0].value
        )


class TestM5:
    def test_embedding_orders_flops(self):
        flops = []
        for dim in M5_EMBEDDING_CHOICES:
            model = build_m5((1, 128), 10, embedding_dim=dim, seed=0)
            f, shape = model.flops((1, 128))
            assert shape == (10,)
            flops.append(f)
        assert flops == sorted(flops)

    def test_forward_shape(self):
        model = build_m5((1, 128), 10, seed=0)
        out = model.forward(np.zeros((2, 1, 128)))
        assert out.shape == (2, 10)

    def test_too_short_input_rejected(self):
        with pytest.raises(ConfigurationError):
            build_m5((1, 16), 10)


class TestTextRNN:
    def test_stride_reduces_flops(self):
        """Larger stride = shorter recurrence = fewer FLOPs — the whole
        point of the tunable."""
        dense = build_textrnn((24, 12), 4, stride=1, seed=0)
        sparse = build_textrnn((24, 12), 4, stride=8, seed=0)
        assert sparse.flops((24, 12))[0] < dense.flops((24, 12))[0] / 4

    def test_forward_shape(self):
        model = build_textrnn((24, 12), 4, stride=3, seed=0)
        out = model.forward(np.zeros((5, 24, 12)))
        assert out.shape == (5, 4)

    def test_invalid_stride(self):
        with pytest.raises(ConfigurationError):
            build_textrnn((24, 12), 4, stride=0)


class TestYolo:
    def test_output_is_box_plus_classes(self):
        model = build_yolo((3, 8, 8), 8, seed=0)
        out = model.forward(np.zeros((2, 3, 8, 8)))
        assert out.shape == (2, 4 + 8)

    def test_dropout_does_not_change_flops(self):
        """Dropout is a training-only regulariser: architectures with
        different rates share inference cost (drives cache reuse, §3.4)."""
        low = build_yolo((3, 8, 8), 8, dropout=0.1, seed=0)
        high = build_yolo((3, 8, 8), 8, dropout=0.5, seed=0)
        assert low.flops((3, 8, 8))[0] == high.flops((3, 8, 8))[0]
        assert low.parameter_count() == high.parameter_count()

    def test_invalid_dropout(self):
        with pytest.raises(ConfigurationError):
            build_yolo((3, 8, 8), 8, dropout=1.0)


class TestRegistry:
    def test_all_families_present(self):
        assert model_names() == ["m5", "resnet", "textrnn", "yolo"]

    def test_unknown_family(self):
        with pytest.raises(WorkloadError):
            get_model_family("transformer")

    def test_instantiate_ignores_foreign_keys(self):
        """A full tuning configuration carries training/system keys the
        builder must skip."""
        family = get_model_family("resnet")
        model = family.instantiate(
            (3, 8, 8), 10,
            {"num_layers": 34, "train_batch_size": 64, "gpus": 4},
            seed=0,
        )
        assert model.forward(np.zeros((1, 3, 8, 8))).shape == (1, 10)

    def test_model_parameter_kinds(self):
        for family in MODEL_FAMILIES.values():
            assert family.model_parameter.kind == "model"


class TestTrainer:
    def test_real_learning_happens(self):
        dataset = make_cifar10(samples=400, seed=1)
        train, test = dataset.split(0.2, rng=0)
        family = get_model_family("resnet")
        model = family.instantiate(dataset.sample_shape,
                                   dataset.num_classes, seed=3)
        result = train_model(
            model, family.make_loss(dataset.num_classes), train, test,
            epochs=8, batch_size=16, lr=0.02, seed=5,
        )
        assert result.accuracy > 0.5  # far above 10 % chance
        assert result.losses[-1] < result.losses[0]

    def test_budget_controls_cost(self):
        dataset = make_cifar10(samples=300, seed=1)
        train, test = dataset.split(0.2, rng=0)
        family = get_model_family("resnet")

        def run(epochs, fraction):
            model = family.instantiate(dataset.sample_shape,
                                       dataset.num_classes, seed=3)
            return train_model(
                model, family.make_loss(dataset.num_classes), train, test,
                epochs=epochs, batch_size=16, data_fraction=fraction, seed=5,
            )

        cheap = run(1, 0.1)
        full = run(4, 1.0)
        assert cheap.samples_seen < full.samples_seen / 10
        assert cheap.train_total_flops < full.train_total_flops

    def test_flop_accounting(self):
        dataset = make_cifar10(samples=100, seed=1)
        train, test = dataset.split(0.2, rng=0)
        family = get_model_family("resnet")
        model = family.instantiate(dataset.sample_shape,
                                   dataset.num_classes, seed=3)
        result = train_model(
            model, family.make_loss(dataset.num_classes), train, test,
            epochs=2, batch_size=16, seed=5,
        )
        assert result.samples_seen == 2 * len(train)
        assert result.train_forward_flops == (
            result.forward_flops_per_sample * result.samples_seen
        )
        assert result.train_total_flops == pytest.approx(
            3 * result.train_forward_flops
        )

    def test_deterministic_given_seed(self):
        dataset = make_cifar10(samples=200, seed=1)
        train, test = dataset.split(0.2, rng=0)
        family = get_model_family("resnet")

        def run():
            model = family.instantiate(dataset.sample_shape,
                                       dataset.num_classes, seed=3)
            return train_model(
                model, family.make_loss(dataset.num_classes), train, test,
                epochs=2, batch_size=16, seed=5,
            )

        assert run().accuracy == run().accuracy

    def test_invalid_epochs(self):
        dataset = make_cifar10(samples=50, seed=1)
        train, test = dataset.split(0.2, rng=0)
        family = get_model_family("resnet")
        model = family.instantiate(dataset.sample_shape,
                                   dataset.num_classes, seed=3)
        with pytest.raises(BudgetError):
            train_model(model, family.make_loss(10), train, test,
                        epochs=0, batch_size=16)

    def test_detection_accuracy_criterion(self):
        dataset = make_coco(samples=300, seed=4)
        train, test = dataset.split(0.2, rng=0)
        family = get_model_family("yolo")
        model = family.instantiate(dataset.sample_shape,
                                   dataset.num_classes, seed=3)
        result = train_model(
            model, family.make_loss(dataset.num_classes), train, test,
            epochs=12, batch_size=16, lr=0.01, seed=5,
        )
        # Joint (class + box) criterion: should clearly beat the
        # class-only chance rate of 1/8.
        assert result.accuracy > 0.25

    @pytest.mark.parametrize(
        "maker,family_name",
        [
            (make_speech_commands, "m5"),
            (make_agnews, "textrnn"),
        ],
    )
    def test_other_modalities_learn(self, maker, family_name):
        dataset = maker(samples=400, seed=2)
        train, test = dataset.split(0.2, rng=0)
        family = get_model_family(family_name)
        model = family.instantiate(dataset.sample_shape,
                                   dataset.num_classes, seed=3)
        result = train_model(
            model, family.make_loss(dataset.num_classes), train, test,
            epochs=8, batch_size=16, lr=0.02, seed=5,
        )
        chance = 1.0 / dataset.num_classes
        assert result.accuracy > 2 * chance
