"""Hypothesis property tests over randomly shaped NN components."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    CrossEntropyLoss,
    Linear,
    ReLU,
    Sequential,
    Tanh,
    softmax,
)
from repro.nn.models import build_m5, build_resnet, build_textrnn, build_yolo


@given(
    in_features=st.integers(1, 12),
    out_features=st.integers(1, 12),
    batch=st.integers(1, 8),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_property_linear_forward_is_linear(in_features, out_features, batch,
                                           seed):
    """f(a x) + f(0) relations: Linear is affine, so
    f(x + y) - f(0) == (f(x) - f(0)) + (f(y) - f(0))."""
    layer = Linear(in_features, out_features, rng=seed)
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(batch, in_features))
    y = rng.normal(size=(batch, in_features))
    f0 = layer.forward(np.zeros((batch, in_features)))
    lhs = layer.forward(x + y) - f0
    rhs = (layer.forward(x) - f0) + (layer.forward(y) - f0)
    np.testing.assert_allclose(lhs, rhs, atol=1e-9)


@given(
    batch=st.integers(1, 6),
    classes=st.integers(2, 12),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_property_softmax_is_distribution(batch, classes, seed):
    rng = np.random.default_rng(seed)
    probabilities = softmax(rng.normal(0, 5, size=(batch, classes)))
    assert (probabilities >= 0).all()
    np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)


@given(
    batch=st.integers(1, 6),
    classes=st.integers(2, 8),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_property_cross_entropy_nonnegative(batch, classes, seed):
    rng = np.random.default_rng(seed)
    loss = CrossEntropyLoss()
    logits = rng.normal(size=(batch, classes))
    targets = rng.integers(classes, size=batch)
    assert loss.forward(logits, targets) >= 0.0


@given(seed=st.integers(0, 2**31 - 1), depth=st.sampled_from([18, 34, 50]))
@settings(max_examples=20, deadline=None)
def test_property_resnet_construction_deterministic(seed, depth):
    a = build_resnet((3, 8, 8), 10, num_layers=depth, seed=seed)
    b = build_resnet((3, 8, 8), 10, num_layers=depth, seed=seed)
    for pa, pb in zip(a.parameters(), b.parameters()):
        np.testing.assert_array_equal(pa.value, pb.value)


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_property_all_models_forward_finite(seed):
    """Every zoo model produces finite logits on random inputs."""
    rng = np.random.default_rng(seed)
    cases = [
        (build_resnet((3, 8, 8), 10, seed=seed), (2, 3, 8, 8)),
        (build_m5((1, 64), 10, seed=seed), (2, 1, 64)),
        (build_textrnn((12, 6), 4, stride=2, seed=seed), (2, 12, 6)),
        (build_yolo((3, 8, 8), 8, seed=seed), (2, 3, 8, 8)),
    ]
    for model, shape in cases:
        model.eval()
        out = model.forward(rng.normal(size=shape))
        assert np.isfinite(out).all()


@given(
    widths=st.lists(st.integers(1, 10), min_size=2, max_size=5),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_property_flops_consistent_with_forward(widths, seed):
    """flops() reports the output shape forward() actually produces."""
    layers = []
    for index, (a, b) in enumerate(zip(widths, widths[1:])):
        layers.append(Linear(a, b, rng=seed + index))
        layers.append(ReLU() if index % 2 == 0 else Tanh())
    model = Sequential(*layers)
    flops, shape = model.flops((widths[0],))
    rng = np.random.default_rng(seed)
    out = model.forward(rng.normal(size=(3, widths[0])))
    assert out.shape == (3, *shape)
    assert flops > 0
