"""Tests for the tuning and inference objective functions (§4.4)."""

import pytest

from repro.errors import ConfigurationError
from repro.objectives import (
    AccuracyObjective,
    InferenceObjective,
    PowerAwareObjective,
    RatioObjective,
)
from repro.telemetry import InferenceMeasurement, TrainingMeasurement


def training(runtime=100.0, energy=500.0):
    return TrainingMeasurement(
        runtime_s=runtime, energy_j=energy, power_w=energy / runtime,
        working_set_bytes=1_000, device="titan-server", gpus=1,
    )


def inference(latency=0.5, energy=2.0, batch=1):
    return InferenceMeasurement(
        batch_latency_s=latency, throughput_sps=batch / latency,
        energy_per_sample_j=energy, power_w=4.0, working_set_bytes=100,
        device="armv7", batch_size=batch,
    )


class TestRatioObjective:
    def test_runtime_formula(self):
        """score = training_time * inference_time / accuracy (eq. 1)."""
        objective = RatioObjective("runtime")
        score = objective.score(0.8, training(runtime=120.0),
                                inference(latency=0.5))
        assert score == pytest.approx(120.0 * 0.5 / 0.8)

    def test_energy_formula(self):
        objective = RatioObjective("energy")
        score = objective.score(0.5, training(energy=400.0),
                                inference(energy=2.0))
        assert score == pytest.approx(400.0 * 2.0 / 0.5)

    def test_no_inference_degenerates(self):
        objective = RatioObjective("runtime")
        score = objective.score(0.8, training(runtime=120.0), None)
        assert score == pytest.approx(120.0 / 0.8)

    def test_higher_accuracy_lower_score(self):
        objective = RatioObjective("runtime")
        low = objective.score(0.5, training(), inference())
        high = objective.score(0.9, training(), inference())
        assert high < low

    def test_accuracy_floor_prevents_blowup(self):
        objective = RatioObjective("runtime")
        assert objective.score(0.0, training(), inference()) < float("inf")

    def test_invalid_accuracy_rejected(self):
        with pytest.raises(ConfigurationError):
            RatioObjective().score(1.5, training(), None)

    def test_invalid_metric(self):
        with pytest.raises(ConfigurationError):
            RatioObjective("latency")

    def test_batched_inference_uses_per_sample_latency(self):
        objective = RatioObjective("runtime")
        batched = inference(latency=1.0, batch=10)
        single = inference(latency=1.0, batch=1)
        assert objective.score(0.8, training(), batched) < objective.score(
            0.8, training(), single
        )


class TestAccuracyTarget:
    def test_feasible_uses_plain_ratio(self):
        objective = RatioObjective("runtime", accuracy_target=0.7)
        plain = RatioObjective("runtime")
        assert objective.score(0.8, training(), inference()) == plain.score(
            0.8, training(), inference()
        )

    def test_infeasible_ranked_after_feasible(self):
        objective = RatioObjective("runtime", accuracy_target=0.7)
        feasible = objective.score(0.71, training(runtime=1e5), inference())
        infeasible = objective.score(0.69, training(runtime=1.0), inference())
        assert infeasible > feasible

    def test_infeasible_balances_shortfall_and_cost(self):
        objective = RatioObjective("runtime", accuracy_target=0.8)
        # Same accuracy: cheaper trial scores better.
        cheap = objective.score(0.5, training(runtime=10.0), inference())
        expensive = objective.score(0.5, training(runtime=100.0), inference())
        assert cheap < expensive
        # Same cost: higher accuracy scores better.
        closer = objective.score(0.7, training(), inference())
        farther = objective.score(0.3, training(), inference())
        assert closer < farther

    def test_invalid_target(self):
        with pytest.raises(ConfigurationError):
            RatioObjective(accuracy_target=0.0)


class TestOtherObjectives:
    def test_accuracy_objective_ignores_cost(self):
        objective = AccuracyObjective()
        a = objective.score(0.9, training(runtime=1.0), None)
        b = objective.score(0.9, training(runtime=1e6), None)
        assert a == b == pytest.approx(0.1)

    def test_power_aware_uses_training_energy(self):
        objective = PowerAwareObjective()
        score = objective.score(0.8, training(energy=400.0),
                                inference(energy=99.0))
        assert score == pytest.approx(400.0 / 0.8)


class TestInferenceObjective:
    def test_runtime_metric(self):
        objective = InferenceObjective("runtime")
        m = inference(latency=1.0, batch=10)
        assert objective.score(m) == pytest.approx(0.1)

    def test_energy_metric(self):
        objective = InferenceObjective("energy")
        assert objective.score(inference(energy=3.0)) == 3.0

    def test_throughput_metric_is_negated(self):
        objective = InferenceObjective("throughput")
        fast = inference(latency=0.1, batch=10)
        slow = inference(latency=1.0, batch=10)
        assert objective.score(fast) < objective.score(slow)

    def test_invalid_metric(self):
        with pytest.raises(ConfigurationError):
            InferenceObjective("accuracy")
