"""Smoke tests for the public API surface and the error hierarchy."""

import importlib

import pytest

import repro
from repro import errors


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackages_importable(self):
        for module in (
            "repro.nn",
            "repro.nn.models",
            "repro.datasets",
            "repro.hardware",
            "repro.search",
            "repro.budgets",
            "repro.objectives",
            "repro.batching",
            "repro.storage",
            "repro.sim",
            "repro.core",
            "repro.baselines",
            "repro.workloads",
            "repro.experiments",
            "repro.telemetry",
            "repro.space",
        ):
            assert importlib.import_module(module) is not None

    def test_subpackage_all_exports_resolve(self):
        for module_name in (
            "repro.nn", "repro.datasets", "repro.hardware", "repro.search",
            "repro.budgets", "repro.objectives", "repro.batching",
            "repro.storage", "repro.sim", "repro.core", "repro.baselines",
            "repro.workloads", "repro.telemetry", "repro.space",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert getattr(module, name, None) is not None, (
                    f"{module_name}.{name}"
                )


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, Exception)
                and obj is not errors.ReproError
            ):
                assert issubclass(obj, errors.ReproError), name

    def test_catchable_as_family(self):
        from repro.space import Integer

        with pytest.raises(errors.ReproError):
            Integer("x", 5, 1)

    def test_specific_types_preserved(self):
        from repro.budgets import EpochBudget

        with pytest.raises(errors.BudgetError):
            EpochBudget(min_epochs=0)
