"""Tests for the report renderers (tables and ASCII bars)."""

import pytest

from repro.experiments.reporting import render_bars, render_table
from repro.experiments.runner import ExperimentResult


def make_result():
    result = ExperimentResult(
        experiment_id="demo",
        title="Demo",
        columns=["system", "runtime_m"],
    )
    result.add_row(system="edgetune", runtime_m=50.0)
    result.add_row(system="tune", runtime_m=100.0)
    return result


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(make_result())
        lines = text.splitlines()
        assert lines[0].startswith("== demo:")
        assert "edgetune" in text and "100.00" in text
        # Header and separator share the same width grid.
        assert len(lines[1]) == len(lines[2])

    def test_empty_result_renders_header_only(self):
        result = ExperimentResult("empty", "Empty", columns=["a"])
        text = render_table(result)
        assert "empty" in text

    def test_notes_appended(self):
        result = make_result()
        result.note("hello note")
        assert "note: hello note" in render_table(result)


class TestRenderBars:
    def test_bars_scale_to_peak(self):
        text = render_bars(make_result(), "system", "runtime_m", width=10)
        lines = text.splitlines()[1:]
        bars = {line.split()[0]: line.count("#") for line in lines}
        assert bars["tune"] == 10  # the peak fills the width
        assert bars["edgetune"] == 5  # half the peak, half the bar

    def test_nonnumeric_column_rejected(self):
        with pytest.raises(ValueError):
            render_bars(make_result(), "runtime_m", "system")

    def test_every_row_labelled(self):
        text = render_bars(make_result(), "system", "runtime_m")
        assert "edgetune" in text and "tune" in text
