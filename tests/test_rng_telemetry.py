"""Tests for the RNG utilities and telemetry records."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import DEFAULT_SEED, derive_seed, ensure_seed, make_rng, spawn_rng
from repro.telemetry import (
    InferenceMeasurement,
    MetricSummary,
    TrainingMeasurement,
    percent_error,
)


class TestRng:
    def test_make_rng_deterministic(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_make_rng_passthrough(self):
        generator = np.random.default_rng(1)
        assert make_rng(generator) is generator

    def test_none_uses_default_seed(self):
        assert make_rng(None).random() == make_rng(DEFAULT_SEED).random()

    def test_derive_seed_stable(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_derive_seed_sensitive_to_path(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a", "b") != derive_seed(1, "ab")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_spawn_rng_independent_streams(self):
        a = spawn_rng(7, "x").random(100)
        b = spawn_rng(7, "y").random(100)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.5

    def test_ensure_seed(self):
        assert ensure_seed(9) == 9
        assert ensure_seed(None) == DEFAULT_SEED
        assert ensure_seed(None, fallback=4) == 4
        with pytest.raises(TypeError):
            ensure_seed(np.random.default_rng(0))


class TestMeasurements:
    def test_training_unit_conversions(self):
        m = TrainingMeasurement(
            runtime_s=120.0, energy_j=6000.0, power_w=50.0,
            working_set_bytes=1, device="titan-server",
        )
        assert m.runtime_minutes == pytest.approx(2.0)
        assert m.energy_kj == pytest.approx(6.0)

    def test_inference_per_sample_latency(self):
        m = InferenceMeasurement(
            batch_latency_s=1.0, throughput_sps=10.0,
            energy_per_sample_j=0.1, power_w=1.0, working_set_bytes=1,
            device="armv7", batch_size=10,
        )
        assert m.latency_per_sample_s == pytest.approx(0.1)


class TestMetricSummary:
    def test_of_values(self):
        summary = MetricSummary.of([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.count == 5
        assert summary.mean == pytest.approx(3.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.p50 == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MetricSummary.of([])

    def test_single_value(self):
        summary = MetricSummary.of([7.0])
        assert summary.p50 == summary.p90 == 7.0


class TestPercentError:
    def test_paper_formula(self):
        """PE = |empirical - estimated| / empirical x 100 (§5.3)."""
        assert percent_error(10.0, 8.0) == pytest.approx(20.0)
        assert percent_error(10.0, 12.0) == pytest.approx(20.0)

    def test_zero_empirical_rejected(self):
        with pytest.raises(ValueError):
            percent_error(0.0, 1.0)


@given(base=st.integers(0, 2**31 - 1), name=st.text(min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_property_derived_seeds_in_range(base, name):
    seed = derive_seed(base, name)
    assert 0 <= seed < 2**63
