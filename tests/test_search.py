"""Tests for search algorithms and multi-fidelity schedulers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SearchSpaceError, TuningError
from repro.search import (
    BOHBScheduler,
    GridSearcher,
    HyperBandScheduler,
    RandomSearcher,
    SearcherScheduler,
    SuccessiveHalvingScheduler,
    TPESampler,
    TrialReport,
    build_scheduler,
    build_searcher,
    rung_fidelities,
)
from repro.space import Categorical, Float, Integer, ParameterSpace


def small_space():
    return ParameterSpace(
        [
            Float("x", 0.0, 1.0),
            Integer("n", 1, 8),
            Categorical("c", ("a", "b")),
        ]
    )


def quadratic(configuration):
    return (configuration["x"] - 0.6) ** 2 + 0.01 * (
        configuration["n"] - 4
    ) ** 2 + (0.0 if configuration["c"] == "a" else 0.2)


def drive(scheduler, objective, limit=5000):
    """Run a scheduler to completion against a deterministic objective."""
    history = []
    while True:
        trial = scheduler.next_trial()
        if trial is None:
            assert scheduler.finished
            break
        score = objective(trial.configuration) + 0.005 * (
            scheduler.max_fidelity - trial.fidelity
        )
        scheduler.report(TrialReport(trial=trial, score=score))
        history.append((trial, score))
        assert len(history) <= limit, "scheduler runaway"
    return history


class TestGridSearcher:
    def test_exhausts_grid_once(self):
        space = ParameterSpace(
            [Categorical("a", (1, 2)), Categorical("b", ("x", "y", "z"))]
        )
        searcher = GridSearcher(space)
        seen = []
        while True:
            configuration = searcher.suggest()
            if configuration is None:
                break
            seen.append(configuration)
        assert len(seen) == 6
        assert len(set(seen)) == 6

    def test_reset(self):
        space = ParameterSpace([Categorical("a", (1, 2))])
        searcher = GridSearcher(space)
        first = searcher.suggest()
        searcher.suggest()
        assert searcher.suggest() is None
        searcher.reset()
        assert searcher.suggest() == first


class TestRandomSearcher:
    def test_deterministic_given_seed(self):
        space = small_space()
        a = [RandomSearcher(space, seed=3).suggest() for _ in range(1)]
        b = [RandomSearcher(space, seed=3).suggest() for _ in range(1)]
        assert a == b

    def test_avoids_duplicates_in_finite_space(self):
        space = ParameterSpace([Categorical("a", tuple(range(10)))])
        searcher = RandomSearcher(space, seed=0)
        seen = [searcher.suggest() for _ in range(10)]
        assert len(set(seen)) == 10
        assert searcher.suggest() is None

    def test_reset_restores_stream(self):
        searcher = RandomSearcher(small_space(), seed=5)
        first = searcher.suggest()
        searcher.reset()
        assert searcher.suggest() == first


class TestTPE:
    def test_improves_over_random(self):
        space = small_space()
        tpe = TPESampler(space, seed=11, startup_trials=6)
        best_tpe = math.inf
        for _ in range(40):
            configuration = tpe.suggest()
            score = quadratic(configuration)
            tpe.observe(configuration, score)
            best_tpe = min(best_tpe, score)
        # The model-guided search lands a genuinely good optimum.
        assert best_tpe < 0.08

    def test_concentrates_near_optimum(self):
        space = ParameterSpace([Float("x", 0.0, 1.0)])
        tpe = TPESampler(space, seed=2, startup_trials=6)
        for _ in range(30):
            configuration = tpe.suggest()
            tpe.observe(configuration, (configuration["x"] - 0.3) ** 2)
        late = [tpe.suggest()["x"] for _ in range(10)]
        assert abs(np.median(late) - 0.3) < 0.25

    def test_invalid_gamma(self):
        with pytest.raises(SearchSpaceError):
            TPESampler(small_space(), gamma=1.5)


class TestRungFidelities:
    def test_paper_example(self):
        """§2.2: min 1, max 16, eta 2 -> 1, 2, 4, 8, 16."""
        assert rung_fidelities(1, 16, 2) == [1, 2, 4, 8, 16]

    def test_non_power_max_included(self):
        assert rung_fidelities(1, 10, 2) == [1, 2, 4, 8, 10]

    def test_invalid(self):
        with pytest.raises(SearchSpaceError):
            rung_fidelities(4, 2, 2)
        with pytest.raises(SearchSpaceError):
            rung_fidelities(1, 8, 1)


class TestSuccessiveHalving:
    def test_paper_trial_counts(self):
        """§2.2's example: 16 trials at fid 1, then 8, 4, 2, 1."""
        space = small_space()
        scheduler = SuccessiveHalvingScheduler(
            space, RandomSearcher(space, seed=0), eta=2,
            min_fidelity=1, max_fidelity=16, seed=0,
        )
        history = drive(scheduler, quadratic)
        per_fidelity = {}
        for trial, _ in history:
            per_fidelity[trial.fidelity] = (
                per_fidelity.get(trial.fidelity, 0) + 1
            )
        assert per_fidelity == {1: 16, 2: 8, 4: 4, 8: 2, 16: 1}

    def test_promotes_best(self):
        space = small_space()
        scheduler = SuccessiveHalvingScheduler(
            space, RandomSearcher(space, seed=1), eta=2,
            min_fidelity=1, max_fidelity=4, seed=1,
        )
        history = drive(scheduler, quadratic)
        rung0 = [(t, s) for t, s in history if t.rung == 0]
        rung1_configs = {t.configuration for t, _ in history if t.rung == 1}
        promoted_scores = sorted(s for t, s in rung0)[: len(rung1_configs)]
        for trial, score in rung0:
            if trial.configuration in rung1_configs:
                assert score <= max(promoted_scores) + 1e-9

    def test_report_for_unknown_trial_skipped(self, caplog):
        """Unknown-trial completions (e.g. issued past a checkpoint
        restore) are logged and dropped, never a crash — and never
        restart the rung."""
        space = small_space()
        scheduler = SuccessiveHalvingScheduler(
            space, RandomSearcher(space, seed=0)
        )
        trial = scheduler.next_trial()
        fake = TrialReport(
            trial=type(trial)(
                trial_id=999, configuration=trial.configuration, fidelity=1
            ),
            score=1.0,
        )
        with caplog.at_level("WARNING", logger="repro.search"):
            scheduler.report(fake)
        assert "unknown trial 999" in caplog.text
        # The stray report left no trace: the real trial is still
        # awaited and the rung's report list is untouched.
        assert trial.trial_id in scheduler._awaiting
        assert scheduler._reports == []
        scheduler.report(
            TrialReport(trial=trial, score=quadratic(trial.configuration))
        )
        history = drive(scheduler, quadratic, limit=5000)
        assert scheduler.finished
        assert history  # the run still completes normally


class TestHyperBand:
    def test_runs_all_brackets(self):
        space = small_space()
        scheduler = HyperBandScheduler(
            space, eta=2, min_fidelity=1, max_fidelity=8, seed=2
        )
        history = drive(scheduler, quadratic)
        brackets = {t.bracket for t, _ in history}
        assert brackets == {0, 1, 2, 3}

    def test_later_brackets_start_higher(self):
        space = small_space()
        scheduler = HyperBandScheduler(
            space, eta=2, min_fidelity=1, max_fidelity=8, seed=2
        )
        history = drive(scheduler, quadratic)
        start_fidelity = {}
        for trial, _ in history:
            start_fidelity.setdefault(trial.bracket, trial.fidelity)
        # bracket s_max starts at min fidelity, bracket 0 at max fidelity
        assert start_fidelity[3] == 1
        assert start_fidelity[0] == 8

    def test_trial_ids_unique(self):
        space = small_space()
        scheduler = HyperBandScheduler(space, max_fidelity=8, seed=0)
        history = drive(scheduler, quadratic)
        ids = [t.trial_id for t, _ in history]
        assert len(ids) == len(set(ids))


class TestBOHB:
    def test_completes_and_finds_good_config(self):
        space = small_space()
        scheduler = BOHBScheduler(space, max_fidelity=8, seed=4)
        history = drive(scheduler, quadratic)
        top = [t for t, _ in history if t.fidelity == 8]
        assert top
        best = min(
            (quadratic(t.configuration) for t in top)
        )
        assert best < 0.25

    def test_model_kicks_in(self):
        """After enough observations BOHB samples non-uniformly: late
        suggestions should beat the uniform-random average."""
        space = ParameterSpace([Float("x", 0.0, 1.0)])
        scheduler = BOHBScheduler(
            space, max_fidelity=8, seed=9, startup_trials=4
        )
        history = drive(
            scheduler, lambda c: (c["x"] - 0.25) ** 2
        )
        late = [t.configuration["x"] for t, _ in history[-8:]]
        assert abs(np.mean(late) - 0.25) < 0.3


class TestRegistry:
    def test_build_searcher_names(self):
        for name in ("grid", "random", "tpe"):
            assert build_searcher(name, small_space(), seed=0) is not None
        with pytest.raises(SearchSpaceError):
            build_searcher("cmaes", small_space())

    @pytest.mark.parametrize(
        "name", ["grid", "random", "tpe", "sha", "hyperband", "bohb", "median"]
    )
    def test_build_scheduler_runs(self, name):
        scheduler = build_scheduler(
            name, small_space(), seed=3, max_fidelity=4, num_trials=6
        )
        history = drive(scheduler, quadratic)
        assert history

    def test_unknown_scheduler(self):
        with pytest.raises(SearchSpaceError):
            build_scheduler("pbt", small_space())


@given(
    eta=st.integers(2, 4),
    max_fidelity=st.integers(2, 32),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=25, deadline=None)
def test_property_sha_fidelities_never_exceed_max(eta, max_fidelity, seed):
    space = small_space()
    scheduler = SuccessiveHalvingScheduler(
        space, RandomSearcher(space, seed=seed), eta=eta,
        min_fidelity=1, max_fidelity=max_fidelity, seed=seed,
    )
    history = drive(scheduler, quadratic)
    assert all(1 <= t.fidelity <= max_fidelity for t, _ in history)
    # Exactly one trial runs at the top fidelity of the final rung.
    top = [t for t, _ in history if t.rung == len(
        rung_fidelities(1, max_fidelity, eta)) - 1]
    assert len(top) >= 1


@given(seed=st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_property_bohb_deterministic(seed):
    space = small_space()

    def run():
        scheduler = BOHBScheduler(space, max_fidelity=4, seed=seed)
        return [
            (t.trial_id, dict(t.configuration), s)
            for t, s in drive(scheduler, quadratic)
        ]

    assert run() == run()
