"""Tests for the asynchronous successive-halving scheduler (ASHA).

The determinism contract under test: given a fixed completion order,
every decision (and every trial id) is a pure function of that order —
bit-identical across runs and across ``state_dict`` save/restore.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TuningError
from repro.search import (
    ASHAScheduler,
    RandomSearcher,
    SuccessiveHalvingScheduler,
    TrialReport,
    build_scheduler,
)
from repro.search.asha import COMPLETE, PAUSE, PROMOTE
from repro.space import Categorical, Float, Integer, ParameterSpace


def small_space():
    return ParameterSpace(
        [
            Float("x", 0.0, 1.0),
            Integer("n", 1, 8),
            Categorical("c", ("a", "b")),
        ]
    )


def make_scheduler(seed=0, **kwargs):
    space = small_space()
    return ASHAScheduler(
        space, RandomSearcher(space, seed=seed), seed=seed, **kwargs
    )


def quadratic(configuration):
    return (configuration["x"] - 0.6) ** 2 + 0.01 * (
        configuration["n"] - 4
    ) ** 2 + (0.0 if configuration["c"] == "a" else 0.2)


def drive_serial(scheduler, objective=quadratic, limit=5000):
    """One-worker driver: every report lands before the next issue."""
    history = []
    while True:
        trial = scheduler.next_trial()
        if trial is None:
            break
        score = objective(trial.configuration) + 0.005 * (
            scheduler.max_fidelity - trial.fidelity
        )
        scheduler.report(TrialReport(trial=trial, score=score))
        history.append((trial, score))
        assert len(history) <= limit, "scheduler runaway"
    assert scheduler.finished
    return history


def drive_pool(scheduler, pick, objective=quadratic, width=4, limit=5000):
    """Pool-style driver: up to ``width`` trials in flight; ``pick(k)``
    chooses which in-flight trial completes next (fixing the completion
    order the determinism contract quantifies over)."""
    in_flight, history = [], []
    while True:
        while len(in_flight) < width:
            trial = scheduler.next_trial()
            if trial is None:
                break
            in_flight.append(trial)
        if not in_flight:
            break
        trial = in_flight.pop(pick(len(in_flight)))
        score = objective(trial.configuration) + 0.005 * (
            scheduler.max_fidelity - trial.fidelity
        )
        scheduler.report(TrialReport(trial=trial, score=score))
        history.append((trial, score))
        assert len(history) <= limit, "scheduler runaway"
    assert scheduler.finished
    return history


class TestASHABasics:
    def test_registry_builds_asha(self):
        scheduler = build_scheduler("asha", small_space(), seed=3)
        assert isinstance(scheduler, ASHAScheduler)
        assert scheduler.asynchronous is True

    def test_serial_run_covers_the_ladder(self):
        scheduler = make_scheduler(seed=0, eta=2, max_fidelity=16)
        history = drive_serial(scheduler)
        per_fidelity = {}
        for trial, _ in history:
            per_fidelity[trial.fidelity] = (
                per_fidelity.get(trial.fidelity, 0) + 1
            )
        # All 16 fresh configurations run at the bottom fidelity and at
        # least one trial reaches the top (n//eta promotion keeps the
        # frontier non-empty once two results land at each rung).
        assert per_fidelity[1] == 16
        assert per_fidelity.get(16, 0) >= 1
        assert len(history) == scheduler.total_trials_issued
        # Every result produced at least one logged decision, the log's
        # result indices are the integers 0..n-1 in order, and each
        # result's own decision comes before any late promotions it
        # triggers.
        indices = [entry[0] for entry in scheduler.decision_log]
        assert sorted(set(indices)) == list(range(len(history)))

    def test_promotions_carry_lineage(self):
        scheduler = make_scheduler(seed=1, eta=2, max_fidelity=8)
        issued = {}
        while True:
            trial = scheduler.next_trial()
            if trial is None:
                break
            issued[trial.trial_id] = trial
            scheduler.report(
                TrialReport(trial=trial, score=quadratic(trial.configuration))
            )
        promotions = [t for t in issued.values() if t.rung > 0]
        assert promotions, "a halving run must promote something"
        for child in promotions:
            parent = issued[child.parent_id]
            assert parent.rung == child.rung - 1
            assert child.parent_fidelity == parent.fidelity
            assert child.fidelity == scheduler.fidelities[child.rung]
            assert child.configuration == parent.configuration
            # Promotion ids live above the fresh-id block.
            assert child.trial_id >= scheduler.num_configs

    def test_paused_trial_promoted_when_frontier_grows(self):
        """A result outside the frontier is paused, not killed: enough
        worse results later can grow the frontier back over it."""
        scheduler = make_scheduler(seed=2, eta=2, max_fidelity=4)
        first = scheduler.next_trial()
        second = scheduler.next_trial()
        # First landing: n=1 -> keep=0 -> pause, however good.
        scheduler.report(TrialReport(trial=first, score=0.1))
        assert scheduler.decision_log[-1] == (
            0, first.trial_id, 0, PAUSE, None,
        )
        # Second landing is worse: n=2 -> keep=1, frontier = {first}, so
        # the *earlier, paused* trial is promoted now (and the landing
        # trial's own pause is logged first).
        scheduler.report(TrialReport(trial=second, score=0.9))
        tail = scheduler.decision_log[-2:]
        assert tail[0] == (1, second.trial_id, 0, PAUSE, None)
        assert tail[1][:4] == (1, first.trial_id, 0, PROMOTE)
        child = scheduler.next_trial()
        assert child.parent_id == first.trial_id
        assert child.rung == 1

    def test_top_rung_results_complete(self):
        scheduler = make_scheduler(seed=0, eta=2, max_fidelity=16)
        drive_serial(scheduler)
        completions = [
            entry for entry in scheduler.decision_log
            if entry[3] == COMPLETE
        ]
        assert completions
        top = len(scheduler.fidelities) - 1
        assert all(entry[2] == top for entry in completions)

    def test_unknown_report_logged_and_skipped(self, caplog):
        scheduler = make_scheduler(seed=0)
        trial = scheduler.next_trial()
        fake = type(trial)(
            trial_id=999, configuration=trial.configuration, fidelity=1
        )
        with caplog.at_level("WARNING", logger="repro.search"):
            scheduler.report(TrialReport(trial=fake, score=1.0))
        assert "unknown trial 999" in caplog.text
        # No decision was logged, no result index consumed.
        assert scheduler.decision_log == []
        assert trial.trial_id in scheduler._awaiting

    def test_empty_searcher_raises(self):
        space = ParameterSpace([Categorical("c", ("a",))])

        class Empty(RandomSearcher):
            def suggest(self):
                return None

        scheduler = ASHAScheduler(space, Empty(space, seed=0), seed=0)
        with pytest.raises(TuningError):
            scheduler.next_trial()


class TestASHADeterminism:
    def test_decision_log_identical_across_runs(self):
        logs = []
        for _ in range(2):
            scheduler = make_scheduler(seed=5, eta=2, max_fidelity=16)
            drive_pool(scheduler, pick=lambda n: n // 2)
            logs.append(list(scheduler.decision_log))
        assert logs[0] == logs[1]
        assert logs[0]

    def test_state_dict_roundtrip_resumes_bit_identically(self):
        """Snapshot mid-stream, restore into a twin, continue both with
        the same completion order: identical logs and identical ids."""
        reference = make_scheduler(seed=7, eta=2, max_fidelity=16)
        resumed = make_scheduler(seed=7, eta=2, max_fidelity=16)
        # Advance both to the same mid-rung point.
        for scheduler in (reference, resumed):
            for _ in range(5):
                trial = scheduler.next_trial()
                scheduler.report(
                    TrialReport(
                        trial=trial, score=quadratic(trial.configuration)
                    )
                )
        blob = resumed.state_dict()
        twin = make_scheduler(seed=7, eta=2, max_fidelity=16)
        twin.load_state_dict(blob)
        drive_serial(reference)
        drive_serial(twin)
        assert twin.decision_log == reference.decision_log
        assert twin.total_trials_issued == reference.total_trials_issued

    def test_restore_then_unknown_completion_is_skipped(self):
        """S2: save, issue + complete past the snapshot, restore — the
        stray completion must neither KeyError nor restart the rung, and
        the restored scheduler re-issues the same trial itself."""
        scheduler = make_scheduler(seed=9, eta=2, max_fidelity=8)
        for _ in range(3):
            trial = scheduler.next_trial()
            scheduler.report(
                TrialReport(trial=trial, score=quadratic(trial.configuration))
            )
        blob = scheduler.state_dict()
        log_at_snapshot = list(scheduler.decision_log)
        # Past the snapshot: issue and complete one more trial.
        beyond = scheduler.next_trial()
        scheduler.report(
            TrialReport(trial=beyond, score=quadratic(beyond.configuration))
        )
        # Crash + restore.  The in-flight completion for ``beyond`` is
        # redelivered to the restored scheduler, which never issued it.
        restored = make_scheduler(seed=9, eta=2, max_fidelity=8)
        restored.load_state_dict(blob)
        restored.report(
            TrialReport(trial=beyond, score=quadratic(beyond.configuration))
        )
        assert restored.decision_log == log_at_snapshot  # no new decision
        # The restored scheduler re-issues the identical trial...
        reissued = restored.next_trial()
        assert reissued.trial_id == beyond.trial_id
        assert reissued.configuration == beyond.configuration
        assert reissued.fidelity == beyond.fidelity
        # ...and the run still completes.
        restored.report(
            TrialReport(
                trial=reissued, score=quadratic(reissued.configuration)
            )
        )
        drive_serial(restored)

    @settings(max_examples=25, deadline=None)
    @given(choices=st.lists(st.integers(0, 3), min_size=8, max_size=64),
           cut=st.integers(2, 10))
    def test_any_fixed_order_is_replayable(self, choices, cut):
        """Hypothesis: for *any* completion order (encoded by ``choices``)
        the decision log replays bit-identically, including across a
        save/restore at an arbitrary point mid-stream."""

        def pick_from(sequence):
            state = {"i": 0}

            def pick(n):
                value = sequence[state["i"] % len(sequence)]
                state["i"] += 1
                return value % n

            return pick

        reference = make_scheduler(seed=11, eta=2, max_fidelity=8)
        drive_pool(reference, pick_from(choices))

        # Replay the same order, snapshotting/restoring after ``cut``
        # completions.
        scheduler = make_scheduler(seed=11, eta=2, max_fidelity=8)
        pick = pick_from(choices)
        in_flight, completed = [], 0
        while True:
            while len(in_flight) < 4:
                trial = scheduler.next_trial()
                if trial is None:
                    break
                in_flight.append(trial)
            if not in_flight:
                break
            trial = in_flight.pop(pick(len(in_flight)))
            scheduler.report(
                TrialReport(
                    trial=trial,
                    score=quadratic(trial.configuration)
                    + 0.005 * (scheduler.max_fidelity - trial.fidelity),
                )
            )
            completed += 1
            if completed == cut:
                twin = make_scheduler(seed=11, eta=2, max_fidelity=8)
                twin.load_state_dict(scheduler.state_dict())
                scheduler = twin
                # The twin never issued the in-flight trials, but the
                # snapshot's ``_awaiting`` carries them, so completions
                # keep landing normally.
        assert scheduler.finished
        assert scheduler.decision_log == reference.decision_log


class TestSyncWaveOrderIndependence:
    """S4: the synchronous halving path must give the same outcome for
    *any* permutation of completion order within a rung — including tied
    scores, where the trial-id tie-break decides."""

    @settings(max_examples=30, deadline=None)
    @given(
        perm=st.permutations(list(range(8))),
        levels=st.lists(st.integers(0, 2), min_size=8, max_size=8),
    )
    def test_sha_final_outcome_is_permutation_invariant(self, perm, levels):
        def score_of(trial):
            # Coarse levels manufacture ties on purpose: the survivor
            # set must still be unique thanks to the trial-id tie-break.
            return float(levels[trial.trial_id % 8]) + 0.01 * trial.rung

        def run(order):
            space = small_space()
            scheduler = SuccessiveHalvingScheduler(
                space, RandomSearcher(space, seed=4),
                num_configs=8, eta=2, max_fidelity=4, seed=4,
            )
            outcome = []
            while not scheduler.finished:
                rung = []
                while True:
                    trial = scheduler.next_trial()
                    if trial is None:
                        break
                    rung.append(trial)
                if not rung:
                    break
                for index in order(len(rung)):
                    trial = rung[index]
                    scheduler.report(
                        TrialReport(trial=trial, score=score_of(trial))
                    )
                    outcome.append(
                        (trial.rung, trial.configuration, score_of(trial))
                    )
            # Compare per-rung *sets* of configurations plus the final
            # best: both must not depend on within-rung completion order.
            by_rung = {}
            for rung, configuration, _ in outcome:
                by_rung.setdefault(rung, set()).add(
                    tuple(sorted(configuration.items()))
                )
            best = min(
                (score, tuple(sorted(c.items())))
                for rung, c, score in outcome
            )
            return by_rung, best

        in_order = run(lambda n: list(range(n)))
        permuted = run(
            lambda n: sorted(range(n), key=lambda i: perm[i % 8])
        )
        assert in_order == permuted
