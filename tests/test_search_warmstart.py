"""Tests for search warm-starting (transfer from prior sessions)."""

import math

import pytest

from repro.baselines import TuneBaseline
from repro.search import (
    BOHBScheduler,
    RandomSearcher,
    SearcherScheduler,
    TPESampler,
    coerce_warm_start_records,
)
from repro.space import Float, Integer, ParameterSpace
from repro.storage import TrialDatabase
from repro.workloads import get_workload


def make_space():
    return ParameterSpace(
        [
            Integer("layers", 1, 8, kind="model"),
            Float("rate", 0.1, 1.0, kind="training"),
        ]
    )


def record(layers=2, rate=0.5, score=1.0, fidelity=0, **extra):
    row = {
        "configuration": {"layers": layers, "rate": rate},
        "score": score,
        "fidelity": fidelity,
    }
    row.update(extra)
    return row


class TestCoerce:
    def test_valid_records_survive(self):
        space = make_space()
        coerced = coerce_warm_start_records(space, [record(), record(3, 0.9)])
        assert len(coerced) == 2
        assert coerced[0]["configuration"]["layers"] == 2
        assert coerced[0]["score"] == 1.0

    def test_extra_database_columns_are_ignored(self):
        coerced = coerce_warm_start_records(
            make_space(), [record(accuracy=0.7, trial_id=3, epochs=4)]
        )
        assert len(coerced) == 1

    def test_stale_or_foreign_configurations_dropped(self):
        space = make_space()
        bad = [
            {"configuration": {"unknown_knob": 1}, "score": 1.0},
            {"configuration": {"layers": 99, "rate": 0.5}, "score": 1.0},
            {"configuration": "not-a-dict", "score": 1.0},
            {"score": 1.0},
            record(score=None),
            record(score=float("nan")),
        ]
        assert coerce_warm_start_records(space, bad) == []

    def test_mixed_batch_keeps_only_valid(self):
        space = make_space()
        coerced = coerce_warm_start_records(
            space, [record(), {"configuration": {"layers": 99}, "score": 1.0}]
        )
        assert len(coerced) == 1


class TestSearcherWarmStart:
    def test_default_absorbs_nothing(self):
        from repro.search import GridSearcher

        assert GridSearcher(make_space()).warm_start([record()]) == 0

    def test_random_never_reproposes_warm_configurations(self):
        space = ParameterSpace([Integer("x", 1, 6)])
        searcher = RandomSearcher(space, seed=5)
        warm = [
            {"configuration": {"x": value}, "score": 1.0}
            for value in (1, 2, 3, 4, 5)
        ]
        assert searcher.warm_start(warm) == 5
        remaining = []
        while True:
            configuration = searcher.suggest()
            if configuration is None:
                break
            remaining.append(configuration["x"])
        assert remaining == [6]

    def test_tpe_counts_toward_startup(self):
        searcher = TPESampler(make_space(), seed=3, startup_trials=4)
        warm = [record(layers, 0.5, score=float(layers)) for layers in
                (1, 2, 3, 4)]
        assert searcher.warm_start(warm) == 4
        assert len(searcher._observations) == 4
        # The model is active from the first suggest (no random startup).
        assert searcher.suggest() is not None

    def test_tpe_warm_start_biases_toward_good_region(self):
        space = ParameterSpace([Float("x", 0.0, 10.0)])
        searcher = TPESampler(space, seed=9, startup_trials=4)
        # Scores reward x near 1; warm records cover the whole range.
        warm = [
            {"configuration": {"x": float(x)}, "score": abs(x - 1.0)}
            for x in range(10)
        ]
        searcher.warm_start(warm)
        samples = [searcher.suggest()["x"] for _ in range(20)]
        mean = sum(samples) / len(samples)
        assert mean < 5.0  # pulled toward the known-good region

    def test_bohb_routes_records_by_fidelity(self):
        scheduler = BOHBScheduler(
            make_space(), min_fidelity=1, max_fidelity=4, seed=2,
            startup_trials=2,
        )
        warm = [record(2, 0.5, score=1.0, fidelity=4),
                record(3, 0.7, score=2.0, fidelity=4),
                record(4, 0.9, score=3.0, fidelity=0)]
        assert scheduler.warm_start(warm) == 3
        assert scheduler.tpe._counts.get(4) == 2
        # Fidelity-0 records only feed the fallback model.
        assert len(scheduler.tpe._fallback._observations) == 3

    def test_scheduler_adapter_delegates(self):
        space = ParameterSpace([Integer("x", 1, 6)])
        scheduler = SearcherScheduler(
            RandomSearcher(space, seed=1), num_trials=6
        )
        absorbed = scheduler.warm_start(
            [{"configuration": {"x": 2}, "score": 0.5}]
        )
        assert absorbed == 1


class TestServerWarmStart:
    def test_prepare_pulls_prior_trials_from_database(self):
        database = TrialDatabase()
        for trial_id, layers in enumerate((18, 34, 50)):
            database.record_trial(
                "tune:IC", trial_id, {"num_layers": layers,
                                      "train_batch_size": 32},
                1, 1, 1.0, 0.6, 10.0, 5.0, 5.0,
            )
        baseline = TuneBaseline(
            workload="IC", algorithm="tpe", seed=3, samples=160,
            max_trials=1, database=database,
        )
        baseline.server.warm_start = True
        baseline.tune()
        assert baseline.server.warm_started_trials == 3

    def test_warm_start_off_by_default(self):
        baseline = TuneBaseline(
            workload="IC", algorithm="tpe", seed=3, samples=160, max_trials=1,
        )
        baseline.tune()
        assert baseline.server.warm_started_trials == 0

    def test_warm_start_reaches_target_in_fewer_trials(self):
        """The ISSUE's ablation: second session beats a cold identical one."""
        target, seed_first, seed_second = 0.75, 7, 21

        def run(database, seed, warm):
            baseline = TuneBaseline(
                workload="IC", algorithm="tpe", seed=seed, samples=200,
                target_accuracy=target, max_trials=40, database=database,
            )
            baseline.server.warm_start = warm
            return baseline.tune()

        shared = TrialDatabase()
        first = run(shared, seed_first, warm=False)
        assert first.best_accuracy >= target

        cold = run(TrialDatabase(), seed_second, warm=False)
        warm = run(shared, seed_second, warm=True)
        assert warm.best_accuracy >= target
        assert warm.num_trials < cold.num_trials
