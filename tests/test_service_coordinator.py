"""Tests for the session coordinator: determinism, resume, failure paths.

The determinism contract under test: because the coordinator integrates
results strictly in wave order, a service run's outcome is independent of
worker count and completion timing — and identical to the classic serial
``ModelTuningServer.run`` for the synchronous halving schedulers.
"""

import os
import pickle

import pytest

import repro.service.worker as worker_module
from repro import EdgeTune
from repro.core.model_server import ModelTuningServer
from repro.errors import ServiceError
from repro.service import (
    JobQueue,
    SessionCoordinator,
    SessionSpec,
    SessionStore,
)
from repro.service.queue import DONE
from repro.service.sessions import S_DONE, S_FAILED
from repro.storage import TrialDatabase


def make_session(db, **overrides):
    base = dict(workload="IC", device="armv7", seed=7, samples=240)
    base.update(overrides)
    spec = SessionSpec(**base)
    return SessionStore(db).create(spec), spec


def fingerprint(result):
    """Everything that must match between two equivalent runs."""
    return (
        [(t.trial_id, t.score, t.accuracy, t.stall_s) for t in result.trials],
        result.best_configuration,
        result.best_accuracy,
        result.best_score,
        result.tuning_runtime_s,
        result.tuning_energy_j,
        result.stall_s,
    )


class TestInlineService:
    def test_matches_classic_serial_run(self):
        serial = EdgeTune(workload="IC", device="armv7", seed=7,
                          samples=240).tune()
        db = TrialDatabase()
        session_id, _ = make_session(db)
        service = SessionCoordinator(db, session_id, workers=0).run()
        assert fingerprint(service) == fingerprint(serial)

    def test_session_row_records_summary_and_meters(self):
        db = TrialDatabase()
        session_id, _ = make_session(db, max_trials=8)
        result = SessionCoordinator(db, session_id, workers=0).run()
        record = SessionStore(db).get(session_id)
        assert record.state == S_DONE
        assert record.result["num_trials"] == len(result.trials)
        assert record.result["best_accuracy"] == result.best_accuracy
        assert record.result["meters"]["trials.integrated"] == len(
            result.trials
        )
        stats = {s["worker"]: s for s in record.result["worker_stats"]}
        assert stats["inline"]["jobs_done"] == len(result.trials)
        assert not record.has_checkpoint  # dropped on finish

    def test_completed_session_cannot_rerun(self):
        db = TrialDatabase()
        session_id, _ = make_session(db, max_trials=4)
        SessionCoordinator(db, session_id, workers=0).run()
        with pytest.raises(ServiceError):
            SessionCoordinator(db, session_id, workers=0).run()


class TestWorkerCountDeterminism:
    def test_one_vs_four_workers_identical(self, tmp_path):
        """Satellite (d): N-worker process pools produce bit-identical
        trial scores and the same winner as a single worker."""
        fingerprints = []
        for workers in (1, 4):
            path = os.path.join(tmp_path, f"svc-{workers}.sqlite")
            with TrialDatabase(path) as db:
                session_id, _ = make_session(db)
                result = SessionCoordinator(
                    db, session_id, workers=workers
                ).run()
                fingerprints.append(fingerprint(result))
                assert SessionStore(db).get(session_id).state == S_DONE
        assert fingerprints[0] == fingerprints[1]


class TestCrashResume:
    def test_resume_after_coordinator_crash_skips_finished_trials(
        self, monkeypatch
    ):
        """Crash after 10 integrated trials; resume must (a) never
        re-execute the training of already-done jobs and (b) finish with
        the exact result of an uninterrupted run."""
        reference_db = TrialDatabase()
        ref_id, _ = make_session(reference_db)
        reference = SessionCoordinator(reference_db, ref_id).run()

        db = TrialDatabase()
        session_id, _ = make_session(db)
        original = ModelTuningServer.integrate
        calls = {"n": 0}

        def crashing(self, state, trial, evaluation, model=None):
            record = original(self, state, trial, evaluation, model=model)
            calls["n"] += 1
            if calls["n"] >= 10:
                raise RuntimeError("simulated coordinator crash")
            return record

        monkeypatch.setattr(ModelTuningServer, "integrate", crashing)
        with pytest.raises(RuntimeError):
            SessionCoordinator(db, session_id, workers=0).run()
        monkeypatch.setattr(ModelTuningServer, "integrate", original)

        store = SessionStore(db)
        crashed = store.get(session_id)
        assert crashed.state == S_FAILED
        assert crashed.has_checkpoint
        # Integration and checkpoint commit atomically: the 10th trial's
        # rows (its inference-cache entry above all) rolled back with the
        # crash, so the resumed run re-merges it against a cold cache and
        # its stall accounting cannot diverge from the reference.
        assert db.trial_count() == 9
        queue = JobQueue(db)
        done_before = {
            job.trial_id: (job.attempts, job.finished_at)
            for job in queue.jobs_for(session_id, DONE)
        }
        assert len(done_before) >= 10

        coordinator = SessionCoordinator(db, session_id, workers=0)
        resumed = coordinator.run()
        assert fingerprint(resumed) == fingerprint(reference)
        assert store.get(session_id).state == S_DONE
        # At least the 9 checkpointed trials were restored, not re-run.
        assert coordinator.meters.counter("trials.resumed").value == 9
        done_after = {
            job.trial_id: (job.attempts, job.finished_at)
            for job in queue.jobs_for(session_id, DONE)
        }
        for trial_id, before in done_before.items():
            assert done_after[trial_id] == before  # untouched by resume

    def test_poison_trials_are_quarantined_and_session_completes(
        self, monkeypatch
    ):
        """A trial that fails every attempt no longer aborts the session:
        the job lands in the dead-letter quarantine and the coordinator
        integrates a worst-case failure record in its place."""
        db = TrialDatabase()
        session_id, _ = make_session(db, max_trials=4)

        def broken(task, *args, **kwargs):
            raise ValueError(f"cannot evaluate trial {task.trial_id}")

        monkeypatch.setattr(worker_module, "evaluate_trial", broken)
        result = SessionCoordinator(
            db, session_id, workers=0, poll_interval_s=0.01
        ).run()
        record = SessionStore(db).get(session_id)
        assert record.state == S_DONE
        assert record.result["failed_trials"] == len(result.trials) > 0
        assert all(t.failure is not None for t in result.trials)

        queue = JobQueue(db)
        failed_jobs = queue.jobs_for(session_id, "failed")
        assert failed_jobs
        assert failed_jobs[0].attempts == failed_jobs[0].max_attempts
        assert "cannot evaluate trial" in failed_jobs[0].error
        letters = queue.dead_letters(session_id)
        assert len(letters) == len(failed_jobs)
        assert record.result["dead_letter"] == len(letters)
        history = letters[0].error_history
        assert [entry["attempt"] for entry in history] == [1, 2, 3]
        assert all("cannot evaluate trial" in entry["error"]
                   for entry in history)


class TestAsyncScheduling:
    """The ASHA merge path: barrier-free integration, replay-mode
    determinism, crash resume, decision-log surfacing."""

    def asha_session(self, db, **overrides):
        base = dict(samples=160, max_trials=12, scheduler="asha")
        base.update(overrides)
        return make_session(db, **base)

    def test_asha_session_completes_and_surfaces_decision_log(self):
        db = TrialDatabase()
        session_id, _ = self.asha_session(db)
        result = SessionCoordinator(db, session_id, workers=0).run()
        record = SessionStore(db).get(session_id)
        assert record.state == S_DONE
        assert result.num_trials == 12
        log = record.result["decision_log"]
        assert log, "async sessions must surface their decision log"
        for index, trial_id, rung, decision, child in log:
            assert decision in ("promote", "pause", "complete")
            assert (child is not None) == (decision == "promote")
        # Promotions ran at higher fidelities (no rung barriers, but the
        # ladder is still climbed).
        assert any(t.fidelity > 1 for t in result.trials)

    def test_pinned_order_identical_across_worker_counts(self, tmp_path):
        """Replay mode: with the completion order pinned, 1-worker and
        4-worker ASHA runs are bit-identical, decision log included."""
        outcomes = []
        for workers in (1, 4):
            path = os.path.join(tmp_path, f"asha-{workers}.sqlite")
            with TrialDatabase(path) as db:
                session_id, _ = self.asha_session(db)
                result = SessionCoordinator(
                    db, session_id, workers=workers, pin_order=True
                ).run()
                record = SessionStore(db).get(session_id)
                assert record.state == S_DONE
                outcomes.append(
                    (fingerprint(result), record.result["decision_log"])
                )
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][1]

    def test_pin_order_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_PIN_COMPLETION_ORDER", "1")
        db = TrialDatabase()
        session_id, _ = self.asha_session(db)
        coordinator = SessionCoordinator(db, session_id, workers=0)
        assert coordinator.pin_order is True
        monkeypatch.setenv("REPRO_PIN_COMPLETION_ORDER", "0")
        assert SessionCoordinator(db, session_id).pin_order is False

    def test_sync_sessions_have_no_decision_log(self):
        db = TrialDatabase()
        session_id, _ = make_session(db, samples=160, max_trials=6)
        SessionCoordinator(db, session_id, workers=0).run()
        record = SessionStore(db).get(session_id)
        assert record.result["decision_log"] is None

    def test_asha_crash_resume_matches_uninterrupted_run(self, monkeypatch):
        """Checkpoint discipline on the async path: crash mid-run, resume,
        and the pinned decision log + result match an uninterrupted run."""
        reference_db = TrialDatabase()
        ref_id, _ = self.asha_session(reference_db)
        reference = SessionCoordinator(
            reference_db, ref_id, workers=0, pin_order=True
        ).run()
        ref_log = SessionStore(reference_db).get(ref_id).result[
            "decision_log"
        ]

        db = TrialDatabase()
        session_id, _ = self.asha_session(db)
        original = ModelTuningServer.integrate
        calls = {"n": 0}

        def crashing(self, state, trial, evaluation, model=None):
            record = original(self, state, trial, evaluation, model=model)
            calls["n"] += 1
            if calls["n"] >= 6:
                raise RuntimeError("simulated coordinator crash")
            return record

        monkeypatch.setattr(ModelTuningServer, "integrate", crashing)
        with pytest.raises(RuntimeError):
            SessionCoordinator(
                db, session_id, workers=0, pin_order=True
            ).run()
        monkeypatch.setattr(ModelTuningServer, "integrate", original)

        store = SessionStore(db)
        assert store.get(session_id).state == S_FAILED
        assert store.get(session_id).has_checkpoint
        resumed = SessionCoordinator(
            db, session_id, workers=0, pin_order=True
        ).run()
        record = store.get(session_id)
        assert record.state == S_DONE
        assert fingerprint(resumed) == fingerprint(reference)
        assert record.result["decision_log"] == ref_log

    def test_num_configs_widens_the_bottom_rung(self):
        """The bracket-width knob reaches the scheduler: a wider bracket
        enters more fresh configurations at the bottom rung."""
        db = TrialDatabase()
        session_id, _ = self.asha_session(
            db, max_trials=None, num_configs=6
        )
        result = SessionCoordinator(db, session_id, workers=0).run()
        fresh = [t for t in result.trials if t.fidelity == 1]
        assert len(fresh) == 6

    def test_num_configs_requires_a_halving_scheduler(self):
        with pytest.raises(ServiceError):
            SessionSpec(num_configs=8)
        with pytest.raises(ServiceError):
            SessionSpec(scheduler="bohb", num_configs=8)
        with pytest.raises(ServiceError):
            SessionSpec(scheduler="asha", num_configs=0)
        spec = SessionSpec(scheduler="sha", num_configs=8)
        assert SessionSpec.from_dict(spec.to_dict()).num_configs == 8

    def test_asha_poison_trial_substituted(self, monkeypatch):
        """Dead-lettered jobs are substituted on the async path too."""
        db = TrialDatabase()
        session_id, _ = self.asha_session(db, max_trials=4)

        def broken(task, *args, **kwargs):
            raise ValueError(f"cannot evaluate trial {task.trial_id}")

        monkeypatch.setattr(worker_module, "evaluate_trial", broken)
        result = SessionCoordinator(
            db, session_id, workers=0, poll_interval_s=0.01,
            pin_order=True,
        ).run()
        record = SessionStore(db).get(session_id)
        assert record.state == S_DONE
        assert all(t.failure is not None for t in result.trials)
        assert JobQueue(db).dead_letters(session_id)
