"""Satellite (c): kill -9 a live service mid-trial, then resume.

Drives the real CLI in a subprocess (own process group), SIGKILLs the
whole group while trials are in flight, and verifies that resuming:

* never re-executes jobs that finished before the kill (their attempt
  counts and finish timestamps are byte-identical afterwards), and
* produces the exact :class:`TuningRunResult` of an uninterrupted run.
"""

import os
import signal
import sqlite3
import subprocess
import sys
import time

import pytest

from repro.service import SessionCoordinator, SessionSpec, SessionStore
from repro.service.queue import DONE
from repro.service.sessions import S_DONE
from repro.storage import TrialDatabase

SPEC = dict(workload="IC", device="armv7", seed=7, samples=240)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def service_env():
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.service"] + list(args),
        env=service_env(),
        capture_output=True,
        text=True,
        timeout=120,
    )


def count_done(db_path, session_id):
    """Poll job progress over a throwaway read-only connection (the
    service owns the main ones)."""
    connection = sqlite3.connect(db_path, timeout=5.0)
    try:
        row = connection.execute(
            "SELECT COUNT(*) FROM jobs WHERE session_id = ? AND state = ?",
            (session_id, DONE),
        ).fetchone()
        return row[0]
    except sqlite3.OperationalError:
        return 0  # tables not created yet
    finally:
        connection.close()


@pytest.mark.slow
def test_kill9_then_resume_matches_uninterrupted_run(tmp_path):
    # Reference: the same session spec run to completion, undisturbed.
    with TrialDatabase() as reference_db:
        ref_id = SessionStore(reference_db).create(SessionSpec(**SPEC))
        reference = SessionCoordinator(reference_db, ref_id).run()

    db_path = os.path.join(tmp_path, "service.sqlite")
    submit = run_cli(
        "submit", SPEC["workload"], "--db", db_path,
        "--device", SPEC["device"],
        "--seed", str(SPEC["seed"]), "--samples", str(SPEC["samples"]),
    )
    assert submit.returncode == 0, submit.stderr
    session_id = submit.stdout.strip()

    # Start the service (coordinator + 2 workers) in its own process
    # group so SIGKILL takes down every process at once — no cleanup.
    service = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "workers",
         "--db", db_path, "-n", "2", "--drain", "--lease-ttl", "1.0"],
        env=service_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,
    )
    try:
        deadline = time.time() + 90
        while time.time() < deadline:
            if count_done(db_path, session_id) >= 4:
                break
            if service.poll() is not None:
                break
            time.sleep(0.01)
        killed_midway = service.poll() is None
        if killed_midway:
            os.killpg(service.pid, signal.SIGKILL)
        service.wait(timeout=30)
    finally:
        if service.poll() is None:
            os.killpg(service.pid, signal.SIGKILL)
            service.wait(timeout=30)

    if not killed_midway:  # pragma: no cover - requires an absurdly fast box
        pytest.skip("service drained the whole session before the kill")

    with TrialDatabase(db_path) as db:
        store = SessionStore(db)
        record = store.get(session_id)
        assert record.state != S_DONE
        assert record.has_checkpoint or count_done(db_path, session_id) >= 0

        from repro.service import JobQueue

        queue = JobQueue(db)
        done_before = {
            job.trial_id: (job.attempts, job.finished_at, job.lease_owner)
            for job in queue.jobs_for(session_id, DONE)
        }
        assert done_before, "killed before any job finished"

        # Resume inline: leases of the killed workers (ttl 1s) expire and
        # their in-flight jobs are reclaimed and retried transparently.
        resumed = SessionCoordinator(db, session_id, workers=0).run()

        assert store.get(session_id).state == S_DONE
        done_after = {
            job.trial_id: (job.attempts, job.finished_at, job.lease_owner)
            for job in queue.jobs_for(session_id, DONE)
        }
        for trial_id, before in done_before.items():
            assert done_after[trial_id] == before, (
                f"finished trial {trial_id} was re-executed on resume"
            )

    assert [
        (t.trial_id, t.score, t.accuracy) for t in resumed.trials
    ] == [(t.trial_id, t.score, t.accuracy) for t in reference.trials]
    assert resumed.best_configuration == reference.best_configuration
    assert resumed.tuning_runtime_s == reference.tuning_runtime_s
    assert resumed.tuning_energy_j == reference.tuning_energy_j
