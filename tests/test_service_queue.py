"""Tests for the service substrate: migrations, job queue, sessions."""

import os
import sqlite3

import pytest

from repro.errors import ServiceError
from repro.service import JobQueue, SessionSpec, SessionStore, backoff_delay
from repro.service.queue import (
    BACKOFF_BASE_S,
    BACKOFF_CAP_S,
    DONE,
    FAILED,
    LEASED,
    QUEUED,
)
from repro.service.sessions import S_DONE, S_FAILED, S_QUEUED, S_RUNNING
from repro.storage import BUSY_TIMEOUT_MS, SCHEMA_VERSION, TrialDatabase


def make_queue():
    db = TrialDatabase()
    return db, JobQueue(db)


class TestMigrations:
    def test_fresh_database_is_current(self):
        db = TrialDatabase()
        assert db.schema_version == SCHEMA_VERSION
        tables = {
            row[0]
            for row in db.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            ).fetchall()
        }
        assert {"trials", "inference_results", "sessions", "jobs"} <= tables

    def test_legacy_v0_database_upgrades_in_place(self, tmp_path):
        """A pre-migration file (no user_version, no created_at column)
        must upgrade on open with its rows intact."""
        path = os.path.join(tmp_path, "legacy.sqlite")
        raw = sqlite3.connect(path)
        raw.executescript(
            """
            CREATE TABLE trials (
                id INTEGER PRIMARY KEY AUTOINCREMENT,
                experiment TEXT NOT NULL,
                trial_id INTEGER NOT NULL,
                configuration TEXT NOT NULL,
                fidelity INTEGER NOT NULL,
                epochs INTEGER NOT NULL,
                data_fraction REAL NOT NULL,
                accuracy REAL NOT NULL,
                score REAL NOT NULL,
                train_runtime_s REAL NOT NULL,
                train_energy_j REAL NOT NULL
            );
            INSERT INTO trials (experiment, trial_id, configuration,
                fidelity, epochs, data_fraction, accuracy, score,
                train_runtime_s, train_energy_j)
            VALUES ('old', 3, '{}', 1, 1, 1.0, 0.5, 2.0, 10.0, 20.0);
            """
        )
        raw.commit()
        raw.close()
        with TrialDatabase(path) as db:
            assert db.schema_version == SCHEMA_VERSION
            columns = {
                row[1]
                for row in db.execute(
                    "PRAGMA table_info(trials)"
                ).fetchall()
            }
            assert "created_at" in columns
            rows = db.trials_for("old")
            assert len(rows) == 1 and rows[0]["trial_id"] == 3
            indexes = {
                row[0]
                for row in db.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'index'"
                ).fetchall()
            }
            assert "idx_trials_experiment_created" in indexes

    def test_created_at_is_stamped_and_history_orders_by_it(self):
        db = TrialDatabase()
        for trial_id, stamp in ((0, 100.0), (1, 300.0), (2, 200.0)):
            db.record_trial("e", trial_id, {}, 1, 1, 1.0, 0.5, 1.0, 1.0,
                            1.0, created_at=stamp)
        stamps = [
            row[0]
            for row in db.execute(
                "SELECT created_at FROM trials ORDER BY id"
            ).fetchall()
        ]
        assert stamps == [100.0, 300.0, 200.0]
        assert [h["trial_id"] for h in db.history("e")] == [1, 2, 0]
        db.record_trial("e", 9, {}, 1, 1, 1.0, 0.5, 1.0, 1.0, 1.0)
        auto = db.execute(
            "SELECT created_at FROM trials WHERE trial_id = 9"
        ).fetchone()[0]
        assert auto > 0

    def test_file_database_uses_wal_and_busy_timeout(self, tmp_path):
        path = os.path.join(tmp_path, "wal.sqlite")
        with TrialDatabase(path) as db:
            mode = db.execute("PRAGMA journal_mode").fetchone()[0]
            assert mode == "wal"
            timeout = db.execute("PRAGMA busy_timeout").fetchone()[0]
            assert timeout == BUSY_TIMEOUT_MS


class TestJobQueue:
    def test_enqueue_is_idempotent(self):
        _, queue = make_queue()
        assert queue.enqueue("s", 1, "payload-a") is True
        assert queue.enqueue("s", 1, "payload-b") is False
        assert queue.get("s", 1).payload == "payload-a"
        assert queue.depths("s")[QUEUED] == 1

    def test_lease_claims_oldest_runnable(self):
        _, queue = make_queue()
        queue.enqueue("s", 1, "p1", now=10.0)
        queue.enqueue("s", 2, "p2", now=11.0)
        job = queue.lease("w1", now=20.0)
        assert job.trial_id == 1
        assert job.state == LEASED
        assert job.attempts == 1
        assert job.lease_owner == "w1"
        other = queue.lease("w2", now=20.0)
        assert other.trial_id == 2
        assert queue.lease("w3", now=20.0) is None

    def test_lease_honours_retry_backoff_time(self):
        _, queue = make_queue()
        queue.enqueue("s", 1, "p", now=0.0)
        job = queue.lease("w1", now=0.0)
        queue.fail(job.id, "w1", "boom", now=1.0)
        delay = backoff_delay(1)
        assert queue.lease("w1", now=1.0 + delay / 2) is None
        retry = queue.lease("w1", now=1.0 + delay)
        assert retry is not None and retry.attempts == 2

    def test_heartbeat_extends_only_the_owner(self):
        _, queue = make_queue()
        queue.enqueue("s", 1, "p")
        job = queue.lease("w1", ttl_s=5.0, now=0.0)
        assert queue.heartbeat(job.id, "w1", ttl_s=5.0, now=3.0) is True
        assert queue.get("s", 1).lease_expires_at == 8.0
        assert queue.heartbeat(job.id, "intruder", now=3.0) is False

    def test_complete_requires_a_held_lease(self):
        _, queue = make_queue()
        queue.enqueue("s", 1, "p")
        job = queue.lease("w1", ttl_s=1.0, now=0.0)
        # Lease expires; the job is reclaimed and re-leased by w2.
        assert queue.reclaim_expired(now=2.0) == 1
        retry = queue.lease("w2", now=2.0 + backoff_delay(1))
        assert retry is not None
        # The zombie's completion is rejected; the new owner's wins.
        assert queue.complete(job.id, "w1", b"zombie") is False
        assert queue.complete(retry.id, "w2", b"fresh") is True
        done = queue.get("s", 1)
        assert done.state == DONE
        assert done.result == b"fresh"
        assert done.lease_owner == "w2"  # kept as the finisher record

    def test_fail_exhausts_attempts_then_terminal(self):
        _, queue = make_queue()
        queue.enqueue("s", 1, "p", max_attempts=2)
        now = 0.0
        job = queue.lease("w", now=now)
        queue.fail(job.id, "w", "first", now=now)
        requeued = queue.get("s", 1)
        assert requeued.state == QUEUED
        assert requeued.next_retry_at == now + backoff_delay(1)
        now += backoff_delay(1)
        job = queue.lease("w", now=now)
        assert job.attempts == 2
        queue.fail(job.id, "w", "second", now=now)
        dead = queue.get("s", 1)
        assert dead.state == FAILED
        assert dead.error == "second"
        assert queue.lease("w", now=now + 1000.0) is None

    def test_reclaim_expired_requeues_dead_workers_jobs(self):
        _, queue = make_queue()
        queue.enqueue("s", 1, "p")
        queue.lease("doomed", ttl_s=1.0, now=0.0)
        assert queue.reclaim_expired(now=0.5) == 0  # still alive
        assert queue.reclaim_expired(now=2.0) == 1
        job = queue.get("s", 1)
        assert job.state == QUEUED
        assert job.lease_owner is None
        assert "doomed" in job.error

    def test_backoff_delay_is_capped_exponential(self):
        assert backoff_delay(1) == BACKOFF_BASE_S
        assert backoff_delay(2) == 2 * BACKOFF_BASE_S
        assert backoff_delay(3) == 4 * BACKOFF_BASE_S
        assert backoff_delay(50) == BACKOFF_CAP_S

    def test_results_for_and_worker_stats(self):
        _, queue = make_queue()
        for trial_id in (1, 2, 3):
            queue.enqueue("s", trial_id, "p", now=0.0)
        for worker in ("w1", "w2"):
            job = queue.lease(worker, now=1.0)
            queue.complete(job.id, worker, f"r{job.trial_id}".encode(),
                           now=3.0)
        results = queue.results_for("s", [1, 2, 3])
        assert results == {1: b"r1", 2: b"r2"}
        stats = {s["worker"]: s for s in queue.worker_stats("s")}
        assert stats["w1"]["jobs_done"] == 1
        assert stats["w1"]["busy_s"] == 2.0
        assert queue.depths("s") == {
            QUEUED: 1, LEASED: 0, DONE: 2, FAILED: 0,
        }


class TestSessions:
    def spec(self, **overrides):
        base = dict(workload="IC", seed=3, samples=100, max_trials=4)
        base.update(overrides)
        return SessionSpec(**base)

    def test_create_get_roundtrip(self):
        db = TrialDatabase()
        store = SessionStore(db)
        session_id = store.create(self.spec())
        record = store.get(session_id)
        assert record.state == S_QUEUED
        assert record.spec == self.spec()
        assert record.result is None
        assert not record.has_checkpoint

    def test_unknown_session_raises(self):
        store = SessionStore(TrialDatabase())
        with pytest.raises(ServiceError):
            store.get("nope")

    def test_invalid_system_rejected(self):
        with pytest.raises(ServiceError):
            SessionSpec(system="hierarchical")

    def test_claim_next_queued_is_ordered_and_exclusive(self):
        store = SessionStore(TrialDatabase())
        first = store.create(self.spec(seed=1))
        second = store.create(self.spec(seed=2))
        claimed = store.claim_next_queued()
        assert claimed.id == first
        assert claimed.state == S_RUNNING
        assert store.claim_next_queued().id == second
        assert store.claim_next_queued() is None

    def test_finish_stores_result_and_drops_checkpoint(self):
        store = SessionStore(TrialDatabase())
        session_id = store.create(self.spec())
        store.save_checkpoint(session_id, b"blob")
        assert store.load_checkpoint(session_id) == b"blob"
        store.finish(session_id, {"num_trials": 4})
        record = store.get(session_id)
        assert record.state == S_DONE
        assert record.result == {"num_trials": 4}
        assert not record.has_checkpoint

    def test_fail_records_error(self):
        store = SessionStore(TrialDatabase())
        session_id = store.create(self.spec())
        store.fail(session_id, "Traceback: boom")
        record = store.get(session_id)
        assert record.state == S_FAILED
        assert "boom" in record.error

    def test_gc_purges_old_finished_sessions_and_jobs(self):
        db = TrialDatabase()
        store = SessionStore(db)
        queue = JobQueue(db)
        old = store.create(self.spec(seed=1))
        store.finish(old, {})
        fresh = store.create(self.spec(seed=2))
        queue.enqueue(old, 1, "p")
        queue.enqueue(fresh, 1, "p")
        queue.lease("dead", ttl_s=-1.0, session_id=fresh)  # already expired
        counts = store.gc(max_age_s=-1.0)
        assert counts["sessions_deleted"] == 1
        assert counts["jobs_deleted"] == 1
        assert counts["leases_reclaimed"] == 1
        with pytest.raises(ServiceError):
            store.get(old)
        assert store.get(fresh).id == fresh
        assert queue.get(fresh, 1) is not None


class TestClockSkewHardening:
    """S1: the janitor's expiry judgement must survive wall-clock steps.

    Lease *stamps* stay wall-clock (cross-process comparable); only the
    janitor's notion of "now" is cross-checked against the monotonic
    clock.  Both skew orderings are pinned: a forward step must not
    mass-expire healthy leases, a backward step must not keep a dead
    worker's lease alive.
    """

    class Clocks:
        def __init__(self, wall=1000.0, mono=500.0):
            self.wall = wall
            self.mono = mono

        def advance(self, dt):
            """Normal passage of time: both clocks tick together."""
            self.wall += dt
            self.mono += dt

        def step_wall(self, dt):
            """An NTP step: only the wall clock jumps."""
            self.wall += dt

    def patched_queue(self, monkeypatch):
        from repro.service import queue as queue_module

        clocks = self.Clocks()
        monkeypatch.setattr(queue_module, "_wall_clock", lambda: clocks.wall)
        monkeypatch.setattr(queue_module, "_mono_clock", lambda: clocks.mono)
        db = TrialDatabase()
        return clocks, db, JobQueue(db)  # anchors read the fakes

    def test_forward_step_does_not_mass_expire_healthy_leases(
        self, monkeypatch
    ):
        from repro.service.queue import SKEW_GRACE_S

        clocks, db, queue = self.patched_queue(monkeypatch)
        queue.enqueue("s", 1, "p", now=clocks.wall)
        job = queue.lease("w", ttl_s=60.0, now=clocks.wall)
        assert job is not None
        clocks.advance(10.0)
        clocks.step_wall(3600.0)  # NTP jumps the wall clock an hour ahead
        # Wall-clock "now" is far past the lease stamp, but the healthy
        # lease must survive: the janitor holds the pre-step timeline.
        assert queue.reclaim_expired() == 0
        assert db.execute(
            "SELECT state FROM jobs WHERE trial_id = 1"
        ).fetchone()[0] == LEASED
        # The worker heartbeats during the grace window, re-stamping its
        # lease under the stepped clock...
        clocks.advance(5.0)
        assert queue.heartbeat(job.id, "w", ttl_s=60.0, now=clocks.wall)
        # ...so once the grace window lapses and the janitor adopts the
        # stepped wall clock, the lease is still honoured.
        clocks.advance(SKEW_GRACE_S + 1.0)
        assert queue.heartbeat(job.id, "w", ttl_s=60.0, now=clocks.wall)
        assert queue.reclaim_expired() == 0

    def test_forward_step_still_reclaims_after_grace_without_heartbeat(
        self, monkeypatch
    ):
        from repro.service.queue import SKEW_GRACE_S

        clocks, db, queue = self.patched_queue(monkeypatch)
        queue.enqueue("s", 1, "p", now=clocks.wall)
        assert queue.lease("w", ttl_s=60.0, now=clocks.wall) is not None
        clocks.step_wall(3600.0)
        assert queue.reclaim_expired() == 0  # grace holds
        # A worker that never re-stamps through the whole grace window is
        # genuinely dead: adopting the stepped clock reclaims its lease.
        clocks.advance(SKEW_GRACE_S + 61.0)
        assert queue.reclaim_expired() == 1
        assert db.execute(
            "SELECT state FROM jobs WHERE trial_id = 1"
        ).fetchone()[0] == QUEUED

    def test_backward_step_still_reclaims_dead_lease(self, monkeypatch):
        clocks, db, queue = self.patched_queue(monkeypatch)
        queue.enqueue("s", 1, "p", now=clocks.wall)
        assert queue.lease("w", ttl_s=60.0, now=clocks.wall) is not None
        # The worker dies; the wall clock then steps back an hour.  A
        # purely wall-clock janitor would judge the lease alive for the
        # next hour; the monotonic timeline says it expired 10s ago.
        clocks.step_wall(-3600.0)
        clocks.advance(70.0)
        assert queue.reclaim_expired() == 1
        assert db.execute(
            "SELECT state FROM jobs WHERE trial_id = 1"
        ).fetchone()[0] == QUEUED

    def test_agreeing_clocks_use_wall_time_directly(self, monkeypatch):
        clocks, db, queue = self.patched_queue(monkeypatch)
        queue.enqueue("s", 1, "p", now=clocks.wall)
        assert queue.lease("w", ttl_s=60.0, now=clocks.wall) is not None
        clocks.advance(59.0)
        assert queue.reclaim_expired() == 0
        clocks.advance(2.0)  # natural expiry, no skew anywhere
        assert queue.reclaim_expired() == 1

    def test_explicit_now_bypasses_the_skew_detector(self, monkeypatch):
        """Simulated-time callers (tests, operators) keep full control."""
        clocks, db, queue = self.patched_queue(monkeypatch)
        queue.enqueue("s", 1, "p", now=clocks.wall)
        assert queue.lease("w", ttl_s=60.0, now=clocks.wall) is not None
        assert queue.reclaim_expired(now=clocks.wall + 61.0) == 1
