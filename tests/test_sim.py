"""Tests for the virtual clock, two-lane executor, and GPU pool."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.sim import (
    INFERENCE_LANE,
    MODEL_LANE,
    PipelinedExecutor,
    SimClock,
)
from repro.sim.pool import GpuPool


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        assert clock.advance(5.0) == 5.0
        assert clock.now == 5.0

    def test_advance_to_never_rewinds(self):
        clock = SimClock(10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0
        clock.advance_to(15.0)
        assert clock.now == 15.0

    def test_negative_rejected(self):
        with pytest.raises(SchedulingError):
            SimClock(-1.0)
        with pytest.raises(SchedulingError):
            SimClock().advance(-0.1)


class TestPipelinedExecutor:
    def test_inference_hidden_inside_trial(self):
        """§3.3: a short inference job adds no model-lane time."""
        executor = PipelinedExecutor()
        executor.start_inference_job("a", 30.0)
        executor.run_training_trial("t0", 100.0)
        stall = executor.await_inference("a")
        assert stall == 0.0
        assert executor.model_time == 100.0
        assert executor.stall_time() == 0.0

    def test_long_inference_stalls_model_lane(self):
        executor = PipelinedExecutor()
        executor.start_inference_job("a", 150.0)
        executor.run_training_trial("t0", 100.0)
        stall = executor.await_inference("a")
        assert stall == pytest.approx(50.0)
        assert executor.model_time == pytest.approx(150.0)
        assert executor.stall_time() == pytest.approx(50.0)

    def test_inference_lane_pipelines(self):
        """Jobs queue on the inference lane, starting no earlier than
        their trigger and the lane being free (Fig 6)."""
        executor = PipelinedExecutor()
        executor.start_inference_job("a", 80.0)
        executor.run_training_trial("t0", 50.0)
        executor.start_inference_job("b", 10.0)  # lane busy until t=80
        segments = executor.lane_segments(INFERENCE_LANE)
        assert segments[1].start == pytest.approx(80.0)
        assert segments[1].end == pytest.approx(90.0)

    def test_await_unknown_job(self):
        with pytest.raises(SchedulingError):
            PipelinedExecutor().await_inference("missing")

    def test_inference_ready(self):
        executor = PipelinedExecutor()
        executor.start_inference_job("a", 10.0)
        assert not executor.inference_ready("a")
        executor.run_training_trial("t0", 20.0)
        assert executor.inference_ready("a")

    def test_busy_accounting(self):
        executor = PipelinedExecutor()
        executor.run_training_trial("t0", 25.0)
        executor.run_training_trial("t1", 15.0)
        assert executor.lane_busy(MODEL_LANE) == pytest.approx(40.0)


class TestGpuPool:
    def test_parallel_placement(self):
        """Eight 1-GPU jobs on an 8-GPU pool run fully concurrently."""
        pool = GpuPool(8)
        for _ in range(8):
            pool.schedule(1, 100.0)
        assert pool.makespan == pytest.approx(100.0)

    def test_wide_job_runs_alone(self):
        pool = GpuPool(8)
        pool.schedule(8, 50.0)
        placement = pool.schedule(1, 10.0)
        assert placement.start == pytest.approx(50.0)

    def test_width_clamped_to_pool(self):
        pool = GpuPool(4)
        placement = pool.schedule(16, 10.0)
        assert len(placement.gpus) == 4

    def test_earliest_barrier_respected(self):
        pool = GpuPool(2)
        placement = pool.schedule(1, 10.0, earliest=100.0)
        assert placement.start == pytest.approx(100.0)

    def test_packing_mixed_widths(self):
        pool = GpuPool(4)
        pool.schedule(2, 100.0)  # gpus {0,1} until 100
        placement = pool.schedule(2, 50.0)  # fits on {2,3} immediately
        assert placement.start == 0.0
        wide = pool.schedule(4, 10.0)  # must wait for all four
        assert wide.start == pytest.approx(100.0)

    def test_busy_seconds_and_utilisation(self):
        pool = GpuPool(2)
        pool.schedule(1, 10.0)
        pool.schedule(1, 10.0)
        assert pool.busy_gpu_seconds() == pytest.approx(20.0)
        assert pool.utilisation() == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(SchedulingError):
            GpuPool(0)
        pool = GpuPool(2)
        with pytest.raises(SchedulingError):
            pool.schedule(0, 1.0)
        with pytest.raises(SchedulingError):
            pool.schedule(1, -1.0)


@given(
    jobs=st.lists(
        st.tuples(st.integers(1, 8), st.floats(0.0, 100.0)),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=40, deadline=None)
def test_property_pool_schedule_consistent(jobs):
    """Makespan >= critical path lower bounds; placements never overlap
    on a GPU."""
    pool = GpuPool(8)
    placements = [pool.schedule(w, d) for w, d in jobs]
    # Lower bound 1: total work / pool size.
    total_work = sum(min(w, 8) * d for w, d in jobs)
    assert pool.makespan >= total_work / 8 - 1e-9
    # Lower bound 2: longest single job.
    assert pool.makespan >= max(d for _, d in jobs) - 1e-9
    # No two placements share a GPU in overlapping time.
    per_gpu = {}
    for placement in placements:
        for gpu in placement.gpus:
            per_gpu.setdefault(gpu, []).append(
                (placement.start, placement.end)
            )
    for intervals in per_gpu.values():
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1 - 1e-9
