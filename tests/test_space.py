"""Unit and property tests for parameter spaces and configurations."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SearchSpaceError
from repro.space import (
    Categorical,
    Configuration,
    Float,
    Integer,
    ParameterSpace,
)


def make_space():
    return ParameterSpace(
        [
            Categorical("layers", (18, 34, 50), kind="model"),
            Integer("batch", 32, 512, log=True, kind="training"),
            Float("dropout", 0.1, 0.5, kind="model"),
            Integer("gpus", 1, 8, kind="system"),
        ]
    )


class TestCategorical:
    def test_sample_in_choices(self):
        p = Categorical("c", ("a", "b", "c"))
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert p.sample(rng) in ("a", "b", "c")

    def test_contains_rejects_wrong_type(self):
        p = Categorical("c", (18, 34, 50))
        assert p.contains(18)
        assert not p.contains(18.0)  # float 18.0 is not the int choice
        assert not p.contains("18")

    def test_grid_is_choices(self):
        p = Categorical("c", ("x", "y"))
        assert p.grid() == ["x", "y"]

    def test_unit_roundtrip(self):
        p = Categorical("c", (18, 34, 50))
        for choice in (18, 34, 50):
            assert p.from_unit(p.to_unit(choice)) == choice

    def test_empty_choices_rejected(self):
        with pytest.raises(SearchSpaceError):
            Categorical("c", ())

    def test_duplicate_choices_rejected(self):
        with pytest.raises(SearchSpaceError):
            Categorical("c", ("a", "a"))

    def test_cardinality(self):
        assert Categorical("c", (1, 2, 3)).cardinality == 3


class TestInteger:
    def test_bounds_validation(self):
        with pytest.raises(SearchSpaceError):
            Integer("i", 5, 2)

    def test_log_requires_positive_low(self):
        with pytest.raises(SearchSpaceError):
            Integer("i", 0, 10, log=True)

    def test_sample_in_range(self):
        p = Integer("i", 3, 9)
        rng = np.random.default_rng(1)
        values = {p.sample(rng) for _ in range(200)}
        assert values <= set(range(3, 10))
        assert len(values) > 3  # actually explores

    def test_log_sample_in_range(self):
        p = Integer("i", 1, 100, log=True)
        rng = np.random.default_rng(1)
        for _ in range(200):
            assert 1 <= p.sample(rng) <= 100

    def test_grid_small_range_exhaustive(self):
        assert Integer("i", 1, 4).grid() == [1, 2, 3, 4]

    def test_grid_respects_bounds(self):
        for value in Integer("i", 32, 512, log=True).grid(8):
            assert 32 <= value <= 512

    def test_unit_roundtrip(self):
        p = Integer("i", 2, 64, log=True)
        for value in (2, 4, 16, 64):
            assert p.from_unit(p.to_unit(value)) == value

    def test_rejects_bool(self):
        assert not Integer("i", 0, 1).contains(True)

    def test_degenerate_range(self):
        p = Integer("i", 5, 5)
        assert p.to_unit(5) == 0.5
        assert p.from_unit(0.9) == 5


class TestFloat:
    def test_sample_in_range(self):
        p = Float("f", 0.1, 0.5)
        rng = np.random.default_rng(2)
        for _ in range(100):
            assert 0.1 <= p.sample(rng) <= 0.5

    def test_unit_roundtrip(self):
        p = Float("f", 1e-4, 1e-1, log=True)
        for value in (1e-4, 1e-3, 1e-2, 1e-1):
            assert p.from_unit(p.to_unit(value)) == pytest.approx(value)

    def test_grid_endpoints(self):
        grid = Float("f", 0.0, 1.0).grid(5)
        assert grid[0] == pytest.approx(0.0)
        assert grid[-1] == pytest.approx(1.0)

    def test_contains_rejects_bool(self):
        assert not Float("f", 0.0, 2.0).contains(True)


class TestParameterSpace:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SearchSpaceError):
            ParameterSpace([Float("x", 0, 1), Float("x", 0, 2)])

    def test_cardinality(self):
        space = ParameterSpace(
            [Categorical("c", (1, 2)), Integer("i", 1, 3)]
        )
        assert space.cardinality == 6

    def test_infinite_cardinality(self):
        space = ParameterSpace([Float("f", 0, 1)])
        assert math.isinf(space.cardinality)

    def test_of_kind_filters(self):
        space = make_space()
        model_space = space.of_kind("model")
        assert model_space.names == ["layers", "dropout"]

    def test_sample_deterministic(self):
        space = make_space()
        assert space.sample(42) == space.sample(42)

    def test_grid_size(self):
        space = ParameterSpace(
            [Categorical("c", (1, 2)), Integer("i", 1, 3)]
        )
        assert len(space.grid()) == 6

    def test_empty_space_rejected(self):
        with pytest.raises(SearchSpaceError):
            ParameterSpace([]).sample(0)

    def test_merge_disjoint(self):
        a = ParameterSpace([Float("x", 0, 1)])
        b = ParameterSpace([Float("y", 0, 1)])
        assert a.merge(b).names == ["x", "y"]

    def test_merge_conflict_rejected(self):
        a = ParameterSpace([Float("x", 0, 1)])
        with pytest.raises(SearchSpaceError):
            a.merge(a)


class TestConfiguration:
    def test_missing_value_rejected(self):
        space = make_space()
        with pytest.raises(ConfigurationError):
            Configuration(space, {"layers": 18})

    def test_unknown_key_rejected(self):
        space = make_space()
        values = dict(space.sample(0))
        values["bogus"] = 1
        with pytest.raises(ConfigurationError):
            Configuration(space, values)

    def test_out_of_domain_rejected(self):
        space = make_space()
        values = dict(space.sample(0))
        values["batch"] = 10_000
        with pytest.raises(ConfigurationError):
            Configuration(space, values)

    def test_equality_and_hash(self):
        space = make_space()
        a = space.sample(3)
        b = Configuration(space, dict(a))
        assert a == b
        assert hash(a) == hash(b)

    def test_subset_by_kind(self):
        space = make_space()
        config = space.sample(5)
        assert set(config.subset(["model"])) == {"layers", "dropout"}
        assert set(config.subset(["system"])) == {"gpus"}

    def test_replace(self):
        space = make_space()
        config = space.sample(5)
        other = config.replace(gpus=2)
        assert other["gpus"] == 2
        assert config["layers"] == other["layers"]

    def test_architecture_key_ignores_training_params(self):
        space = make_space()
        config = space.sample(5)
        assert (
            config.architecture_key()
            == config.replace(batch=64).architecture_key()
        )


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_property_sampled_configs_are_valid(seed):
    """Any sampled configuration validates against its own space."""
    space = make_space()
    config = space.sample(seed)
    rebuilt = Configuration(space, dict(config))
    assert rebuilt == config


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_property_unit_vector_roundtrip_is_stable(seed):
    """unit-vector embedding round-trips to the same configuration for
    grid-aligned values (idempotent after one round trip)."""
    space = make_space()
    config = space.sample(seed)
    once = space.from_unit_vector(config.to_unit_vector())
    twice = space.from_unit_vector(once.to_unit_vector())
    assert once == twice


@given(
    low=st.integers(-100, 100),
    span=st.integers(0, 200),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_property_integer_sampling_respects_bounds(low, span, seed):
    p = Integer("i", low, low + span)
    rng = np.random.default_rng(seed)
    value = p.sample(rng)
    assert low <= value <= low + span
