"""Tests for the persistent trial database and inference cache."""

import os
import threading

import pytest

from repro.storage import StoredInferenceResult, TrialDatabase


def stored(key="arch-a", device="armv7", objective="inference-energy"):
    return StoredInferenceResult(
        architecture_key=key,
        device=device,
        objective=objective,
        configuration={"inference_batch_size": 8, "cores": 2,
                       "frequency_ghz": 1.2},
        batch_latency_s=0.5,
        throughput_sps=16.0,
        energy_per_sample_j=0.2,
        power_w=3.2,
        tuning_runtime_s=42.0,
        tuning_energy_j=1470.0,
    )


class TestTrials:
    def test_record_and_fetch(self):
        db = TrialDatabase()
        db.record_trial("exp", 0, {"x": 1}, 1, 2, 0.5, 0.8, 1.2, 100.0, 500.0)
        rows = db.trials_for("exp")
        assert len(rows) == 1
        assert rows[0]["configuration"] == {"x": 1}
        assert rows[0]["accuracy"] == 0.8

    def test_experiments_isolated(self):
        db = TrialDatabase()
        db.record_trial("a", 0, {}, 1, 1, 1.0, 0.5, 1.0, 1.0, 1.0)
        db.record_trial("b", 0, {}, 1, 1, 1.0, 0.5, 1.0, 1.0, 1.0)
        assert db.trial_count("a") == 1
        assert db.trial_count() == 2
        assert len(db.trials_for("a")) == 1

    def test_order_preserved(self):
        db = TrialDatabase()
        for trial_id in (5, 1, 9):
            db.record_trial("e", trial_id, {}, 1, 1, 1.0, 0.1, 1.0, 1.0, 1.0)
        assert [r["trial_id"] for r in db.trials_for("e")] == [5, 1, 9]


class TestInferenceCache:
    def test_roundtrip(self):
        db = TrialDatabase()
        db.store_inference(stored())
        result = db.lookup_inference("arch-a", "armv7", "inference-energy")
        assert result is not None
        assert result.configuration["inference_batch_size"] == 8
        assert result.throughput_sps == 16.0

    def test_miss_returns_none(self):
        db = TrialDatabase()
        assert db.lookup_inference("nope", "armv7", "x") is None

    def test_key_includes_device_and_objective(self):
        db = TrialDatabase()
        db.store_inference(stored(device="armv7"))
        assert db.lookup_inference("arch-a", "i7nuc",
                                   "inference-energy") is None
        assert db.lookup_inference("arch-a", "armv7",
                                   "inference-runtime") is None

    def test_replace_overwrites(self):
        db = TrialDatabase()
        db.store_inference(stored())
        updated = stored()
        updated.throughput_sps = 99.0
        db.store_inference(updated)
        result = db.lookup_inference("arch-a", "armv7", "inference-energy")
        assert result.throughput_sps == 99.0
        assert db.inference_cache_size() == 1

    def test_cache_size(self):
        db = TrialDatabase()
        db.store_inference(stored(key="a"))
        db.store_inference(stored(key="b"))
        assert db.inference_cache_size() == 2


class TestPersistence:
    def test_file_backed_roundtrip(self, tmp_path):
        path = os.path.join(tmp_path, "trials.sqlite")
        with TrialDatabase(path) as db:
            db.store_inference(stored())
            db.record_trial("e", 0, {}, 1, 1, 1.0, 0.9, 1.0, 1.0, 1.0)
        with TrialDatabase(path) as db:
            assert db.inference_cache_size() == 1
            assert db.trial_count("e") == 1

    def test_threaded_writes(self):
        """The model and inference servers write concurrently."""
        db = TrialDatabase()

        def writer(name):
            for i in range(25):
                db.record_trial(name, i, {}, 1, 1, 1.0, 0.5, 1.0, 1.0, 1.0)

        threads = [
            threading.Thread(target=writer, args=(f"t{n}",)) for n in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert db.trial_count() == 100
