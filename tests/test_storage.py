"""Tests for the persistent trial database and inference cache."""

import os
import threading

import pytest

from repro.storage import StoredInferenceResult, TrialDatabase


def stored(key="arch-a", device="armv7", objective="inference-energy"):
    return StoredInferenceResult(
        architecture_key=key,
        device=device,
        objective=objective,
        configuration={"inference_batch_size": 8, "cores": 2,
                       "frequency_ghz": 1.2},
        batch_latency_s=0.5,
        throughput_sps=16.0,
        energy_per_sample_j=0.2,
        power_w=3.2,
        tuning_runtime_s=42.0,
        tuning_energy_j=1470.0,
    )


class TestTrials:
    def test_record_and_fetch(self):
        db = TrialDatabase()
        db.record_trial("exp", 0, {"x": 1}, 1, 2, 0.5, 0.8, 1.2, 100.0, 500.0)
        rows = db.trials_for("exp")
        assert len(rows) == 1
        assert rows[0]["configuration"] == {"x": 1}
        assert rows[0]["accuracy"] == 0.8

    def test_experiments_isolated(self):
        db = TrialDatabase()
        db.record_trial("a", 0, {}, 1, 1, 1.0, 0.5, 1.0, 1.0, 1.0)
        db.record_trial("b", 0, {}, 1, 1, 1.0, 0.5, 1.0, 1.0, 1.0)
        assert db.trial_count("a") == 1
        assert db.trial_count() == 2
        assert len(db.trials_for("a")) == 1

    def test_order_preserved(self):
        db = TrialDatabase()
        for trial_id in (5, 1, 9):
            db.record_trial("e", trial_id, {}, 1, 1, 1.0, 0.1, 1.0, 1.0, 1.0)
        assert [r["trial_id"] for r in db.trials_for("e")] == [5, 1, 9]


class TestInferenceCache:
    def test_roundtrip(self):
        db = TrialDatabase()
        db.store_inference(stored())
        result = db.lookup_inference("arch-a", "armv7", "inference-energy")
        assert result is not None
        assert result.configuration["inference_batch_size"] == 8
        assert result.throughput_sps == 16.0

    def test_miss_returns_none(self):
        db = TrialDatabase()
        assert db.lookup_inference("nope", "armv7", "x") is None

    def test_key_includes_device_and_objective(self):
        db = TrialDatabase()
        db.store_inference(stored(device="armv7"))
        assert db.lookup_inference("arch-a", "i7nuc",
                                   "inference-energy") is None
        assert db.lookup_inference("arch-a", "armv7",
                                   "inference-runtime") is None

    def test_replace_overwrites(self):
        db = TrialDatabase()
        db.store_inference(stored())
        updated = stored()
        updated.throughput_sps = 99.0
        db.store_inference(updated)
        result = db.lookup_inference("arch-a", "armv7", "inference-energy")
        assert result.throughput_sps == 99.0
        assert db.inference_cache_size() == 1

    def test_cache_size(self):
        db = TrialDatabase()
        db.store_inference(stored(key="a"))
        db.store_inference(stored(key="b"))
        assert db.inference_cache_size() == 2


class TestPersistence:
    def test_file_backed_roundtrip(self, tmp_path):
        path = os.path.join(tmp_path, "trials.sqlite")
        with TrialDatabase(path) as db:
            db.store_inference(stored())
            db.record_trial("e", 0, {}, 1, 1, 1.0, 0.9, 1.0, 1.0, 1.0)
        with TrialDatabase(path) as db:
            assert db.inference_cache_size() == 1
            assert db.trial_count("e") == 1

    def test_threaded_writes(self):
        """The model and inference servers write concurrently."""
        db = TrialDatabase()

        def writer(name):
            for i in range(25):
                db.record_trial(name, i, {}, 1, 1, 1.0, 0.5, 1.0, 1.0, 1.0)

        threads = [
            threading.Thread(target=writer, args=(f"t{n}",)) for n in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert db.trial_count() == 100


def recommendation(workload="IC", device="armv7", objective="runtime",
                   target=0.8, system="edgetune", accuracy=0.82):
    from repro.storage import StoredRecommendation

    return StoredRecommendation(
        workload=workload,
        device=device,
        objective=objective,
        target_accuracy=target,
        system=system,
        signature={"workload": workload, "family": "resnet"},
        session_id="s-1",
        best_configuration={"num_layers": 18},
        best_accuracy=accuracy,
        best_score=1.5,
        num_trials=12,
        tuning_runtime_s=640.0,
        tuning_energy_j=9000.0,
        inference={"configuration": {"cores": 2}},
        created_at=1000.0,
    )


class TestRecommendations:
    def test_roundtrip(self):
        db = TrialDatabase()
        db.store_recommendation(recommendation())
        row = db.lookup_recommendation("IC", "armv7", "runtime", 0.8)
        assert row is not None
        assert row.best_configuration == {"num_layers": 18}
        assert row.signature["family"] == "resnet"
        assert row.inference == {"configuration": {"cores": 2}}
        assert row.target_accuracy == 0.8

    def test_miss_returns_none(self):
        db = TrialDatabase()
        db.store_recommendation(recommendation())
        assert db.lookup_recommendation("IC", "i7nuc", "runtime", 0.8) is None
        assert db.lookup_recommendation("IC", "armv7", "energy", 0.8) is None
        assert db.lookup_recommendation("SR", "armv7", "runtime", 0.8) is None

    def test_none_target_is_its_own_key(self):
        db = TrialDatabase()
        db.store_recommendation(recommendation(target=None))
        db.store_recommendation(recommendation(target=0.8))
        assert db.recommendation_count() == 2
        row = db.lookup_recommendation("IC", "armv7", "runtime", None)
        assert row is not None
        assert row.target_accuracy is None

    def test_replace_on_same_key(self):
        db = TrialDatabase()
        db.store_recommendation(recommendation(accuracy=0.7))
        db.store_recommendation(recommendation(accuracy=0.9))
        assert db.recommendation_count() == 1
        row = db.lookup_recommendation("IC", "armv7", "runtime", 0.8)
        assert row.best_accuracy == 0.9

    def test_system_filter_and_best_row_wins(self):
        db = TrialDatabase()
        db.store_recommendation(recommendation(system="edgetune",
                                               accuracy=0.8))
        db.store_recommendation(recommendation(system="tune", accuracy=0.9))
        any_system = db.lookup_recommendation("IC", "armv7", "runtime", 0.8)
        assert any_system.best_accuracy == 0.9
        pinned = db.lookup_recommendation("IC", "armv7", "runtime", 0.8,
                                          system="edgetune")
        assert pinned.system == "edgetune"

    def test_all_recommendations_filters(self):
        db = TrialDatabase()
        db.store_recommendation(recommendation(device="armv7"))
        db.store_recommendation(recommendation(device="i7nuc"))
        assert len(db.all_recommendations()) == 2
        assert len(db.all_recommendations(device="armv7")) == 1

    def test_file_backed_roundtrip(self, tmp_path):
        path = os.path.join(tmp_path, "reco.sqlite")
        with TrialDatabase(path) as db:
            db.store_recommendation(recommendation())
        with TrialDatabase(path) as db:
            assert db.recommendation_count() == 1


class TestStructureKeyedCache:
    """§3.4: inference results are keyed by what the device executes.

    Two configurations that differ only in training hyperparameters
    (batch size, gpus) share one cache row; changing the architecture
    (num_layers) must miss.
    """

    @staticmethod
    def make_server():
        from repro.budgets import MultiBudget
        from repro.core import ModelTuningServer
        from repro.objectives import AccuracyObjective
        from repro.workloads import get_workload

        return ModelTuningServer(
            workload=get_workload("IC"),
            algorithm="bohb",
            budget=MultiBudget(min_epochs=1, max_epochs=4, min_fraction=0.25),
            objective=AccuracyObjective(),
            database=TrialDatabase(),
            seed=11,
            samples=160,
            include_system_parameters=True,
        )

    def test_training_only_changes_share_a_key(self):
        server = self.make_server()
        state = server.prepare()
        space = state.space
        base = space.configuration(num_layers=18, train_batch_size=32,
                                   gpus=1)
        retrained = space.configuration(num_layers=18, train_batch_size=256,
                                        gpus=8)
        key_a, flops_a, params_a = server._architecture_key(
            base, state.train_set
        )
        key_b, flops_b, params_b = server._architecture_key(
            retrained, state.train_set
        )
        assert key_a == key_b
        assert (flops_a, params_a) == (flops_b, params_b)

    def test_structure_change_misses(self):
        server = self.make_server()
        state = server.prepare()
        space = state.space
        shallow = space.configuration(num_layers=18, train_batch_size=32,
                                      gpus=1)
        deep = space.configuration(num_layers=50, train_batch_size=32,
                                   gpus=1)
        key_a, _, _ = server._architecture_key(shallow, state.train_set)
        key_b, _, _ = server._architecture_key(deep, state.train_set)
        assert key_a != key_b

        db = server.database
        db.store_inference(stored(key=key_a))
        assert db.lookup_inference(key_a, "armv7",
                                   "inference-energy") is not None
        assert db.lookup_inference(key_b, "armv7",
                                   "inference-energy") is None

    def test_lookup_hits_across_training_hyperparameters(self):
        server = self.make_server()
        state = server.prepare()
        space = state.space
        db = server.database
        key_stored, _, _ = server._architecture_key(
            space.configuration(num_layers=34, train_batch_size=64, gpus=2),
            state.train_set,
        )
        db.store_inference(stored(key=key_stored))
        key_again, _, _ = server._architecture_key(
            space.configuration(num_layers=34, train_batch_size=512, gpus=4),
            state.train_set,
        )
        hit = db.lookup_inference(key_again, "armv7", "inference-energy")
        assert hit is not None
        assert hit.configuration["inference_batch_size"] == 8
