"""Trace generators: determinism, the scenario grammar, rate invariants.

The determinism contract is the load-bearing one — the SLO objectives
and the artifact cache both assume the same scenario string builds the
same request stream in every process, on every run — so it is tested
in-process *and* across interpreter boundaries (fresh subprocess).
"""

import io
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.traffic import (
    MAX_TRACE_REQUESTS,
    TRACE_FAMILIES,
    Trace,
    build_trace,
    load_trace,
    parse_scenario,
    save_trace,
)

SCENARIOS = [
    "poisson:rate=40,duration=20,seed=3",
    "diurnal:rate=30,peak=4,period=60,duration=60,seed=3",
    "flash:rate=30,mult=8,start=10,width=5,duration=30,seed=3",
    "pareto:rate=40,alpha=1.5,duration=20,seed=3",
    "multi:rate=40,models=3,duration=20,seed=3",
    "fleet:rate=40,devices=armv7+i7nuc,duration=20,seed=3",
]


class TestDeterminism:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_same_seed_bit_identical(self, scenario):
        first = build_trace(scenario)
        second = build_trace(scenario)
        assert first.digest() == second.digest()
        np.testing.assert_array_equal(first.arrivals_s, second.arrivals_s)
        np.testing.assert_array_equal(first.model_ids, second.model_ids)

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_different_seed_different_stream(self, scenario):
        other = scenario.replace("seed=3", "seed=4")
        assert build_trace(scenario).digest() != build_trace(other).digest()

    def test_digest_identical_across_processes(self):
        """A fresh interpreter (fresh hash salt, fresh numpy state) must
        reproduce the exact digests — the cross-process half of the
        determinism contract."""
        code = (
            "from repro.traffic import build_trace\n"
            "for scenario in %r:\n"
            "    print(build_trace(scenario).digest())\n" % (SCENARIOS,)
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        )
        subprocess_digests = result.stdout.split()
        local_digests = [build_trace(s).digest() for s in SCENARIOS]
        assert subprocess_digests == local_digests

    def test_canonical_spec_is_order_insensitive(self):
        left = parse_scenario("flash:rate=30,mult=8,duration=30,seed=3")
        right = parse_scenario("flash:seed=3,duration=30,mult=8,rate=30")
        assert left.canonical() == right.canonical()
        assert left.build().digest() == right.build().digest()


class TestGrammar:
    def test_defaults(self):
        spec = parse_scenario("poisson:")
        assert spec.rate_rps == 50.0
        assert spec.duration_s == 60.0
        assert spec.seed == 0

    def test_unknown_family(self):
        with pytest.raises(ConfigurationError, match="unknown trace family"):
            parse_scenario("tsunami:rate=10")

    def test_unknown_key_rejected_per_family(self):
        with pytest.raises(ConfigurationError, match="not valid"):
            parse_scenario("poisson:rate=10,mult=4")

    def test_malformed_value(self):
        with pytest.raises(ConfigurationError):
            parse_scenario("poisson:rate=fast")

    def test_known_families_all_parse(self):
        for scenario in SCENARIOS:
            assert parse_scenario(scenario).family in TRACE_FAMILIES

    def test_request_cap_enforced(self):
        # Parsing a huge scenario is allowed (eager validation skips the
        # expensive build); materialising it must fail loudly.
        spec = parse_scenario(
            "poisson:rate=%d,duration=10" % (MAX_TRACE_REQUESTS,)
        )
        with pytest.raises(ConfigurationError, match="cap"):
            spec.build()

    def test_flash_needs_sane_window(self):
        with pytest.raises(ConfigurationError):
            parse_scenario("flash:rate=10,duration=10,width=0,seed=1")

    def test_pareto_needs_finite_mean(self):
        with pytest.raises(ConfigurationError, match="alpha"):
            parse_scenario("pareto:rate=10,duration=10,alpha=1.0")


class TestTraceStructure:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_sorted_and_bounded(self, scenario):
        spec = parse_scenario(scenario)
        trace = spec.build()
        assert len(trace) > 0
        assert np.all(np.diff(trace.arrivals_s) >= 0)
        assert trace.arrivals_s[0] >= 0
        assert trace.arrivals_s[-1] < spec.duration_s

    def test_unsorted_arrivals_rejected(self):
        with pytest.raises(ConfigurationError, match="sorted"):
            Trace(name="bad", arrivals_s=[2.0, 1.0], model_ids=[0, 0])

    def test_fleet_split_partitions_requests(self):
        trace = build_trace("fleet:rate=60,devices=armv7+i7nuc,duration=20,seed=5")
        parts = trace.split_by_device()
        assert set(parts) == {"armv7", "i7nuc"}
        assert sum(len(part) for part in parts.values()) == len(trace)
        for part in parts.values():
            assert part.device_ids is None  # sub-traces are single-device

    def test_multi_assigns_skewed_streams(self):
        trace = build_trace("multi:rate=200,models=3,duration=30,seed=5")
        counts = np.bincount(trace.model_ids, minlength=3)
        # Stream k carries ~2^-k weight: strictly decreasing at this size.
        assert counts[0] > counts[1] > counts[2] > 0

    def test_flash_spike_concentrates_arrivals(self):
        trace = build_trace(
            "flash:rate=30,mult=8,start=10,width=5,duration=30,seed=5"
        )
        in_window = np.count_nonzero(
            (trace.arrivals_s >= 10) & (trace.arrivals_s < 15)
        )
        outside_rate = (len(trace) - in_window) / 25.0
        assert in_window / 5.0 > 3.0 * outside_rate


class TestLineJson:
    def test_round_trip_preserves_stream(self):
        trace = build_trace("multi:rate=50,models=2,duration=10,seed=9")
        buffer = io.StringIO()
        count = save_trace(trace, buffer)
        assert count == len(trace)
        buffer.seek(0)
        loaded = load_trace(buffer, name=trace.name)
        np.testing.assert_allclose(
            loaded.arrivals_s, trace.arrivals_s, atol=1e-9
        )
        assert [trace.models[i] for i in trace.model_ids] == [
            loaded.models[i] for i in loaded.model_ids
        ]

    def test_load_sorts_stably(self):
        buffer = io.StringIO(
            '{"arrival_s": 2.0, "model": "b"}\n'
            '{"arrival_s": 1.0, "model": "a"}\n'
            '{"arrival_s": 1.0, "model": "b"}\n'
        )
        trace = load_trace(buffer)
        np.testing.assert_allclose(trace.arrivals_s, [1.0, 1.0, 2.0])
        first, second, third = list(trace.requests())
        assert (first.model, second.model, third.model) == ("a", "b", "b")

    def test_bad_record_is_an_error(self):
        with pytest.raises(ConfigurationError, match="line 1"):
            load_trace(io.StringIO("not json\n"))

    def test_empty_file_is_an_error(self):
        with pytest.raises(ConfigurationError, match="no requests"):
            load_trace(io.StringIO(""))

    def test_negative_arrival_is_an_error(self):
        with pytest.raises(ConfigurationError, match="negative"):
            load_trace(io.StringIO('{"arrival_s": -1.0}\n'))


@given(
    rate=st.floats(5.0, 200.0),
    duration=st.floats(5.0, 40.0),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_property_poisson_rate_matches_spec(rate, duration, seed):
    """Empirical arrival rate tracks the requested rate (law of large
    numbers, 6-sigma Poisson tolerance so the test is deterministic-safe
    for every seed hypothesis picks)."""
    trace = build_trace(
        "poisson:rate=%g,duration=%g,seed=%d" % (rate, duration, seed)
    )
    expected = rate * duration
    assert abs(len(trace) - expected) <= 6.0 * np.sqrt(expected) + 1


@given(
    rate=st.floats(10.0, 100.0),
    seed=st.integers(0, 2**31 - 1),
    family=st.sampled_from(["poisson", "diurnal", "flash", "pareto"]),
)
@settings(max_examples=25, deadline=None)
def test_property_arrivals_sorted_in_range(rate, seed, family):
    duration = 20.0
    trace = build_trace(
        "%s:rate=%g,duration=%g,seed=%d" % (family, rate, duration, seed)
    )
    assert np.all(np.diff(trace.arrivals_s) >= 0)
    assert np.all(trace.arrivals_s >= 0)
    assert np.all(trace.arrivals_s < duration)


@given(
    rate=st.floats(20.0, 100.0),
    alpha=st.floats(1.2, 3.0),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_property_pareto_never_overshoots(rate, alpha, seed):
    """A single Lomax realization can undershoot the nominal rate by an
    unbounded factor (one heavy-tail gap can swallow the whole window),
    so no per-seed lower bound exists; the sum of gaps, however, cannot
    collapse far below the median, so overshoot IS bounded."""
    duration = 60.0
    trace = build_trace(
        "pareto:rate=%g,alpha=%g,duration=%g,seed=%d"
        % (rate, alpha, duration, seed)
    )
    empirical = len(trace) / duration
    assert empirical < rate * 10.0


@pytest.mark.parametrize("alpha", [1.3, 2.5])
def test_pareto_long_run_rate_calibrated(alpha):
    """The Lomax scale is solved so the long-run rate matches ``rate``.
    A single trace is too noisy under heavy tails, so calibration is
    checked on the average over a fixed bank of seeds — fully
    deterministic, no property-test randomness."""
    rate, duration = 40.0, 60.0
    rates = [
        len(
            build_trace(
                "pareto:rate=%g,alpha=%g,duration=%g,seed=%d"
                % (rate, alpha, duration, seed)
            )
        )
        / duration
        for seed in range(30)
    ]
    mean_rate = sum(rates) / len(rates)
    assert rate / 2.0 < mean_rate < rate * 2.0
