"""The replay engine, SLO objectives, and the load-aware tuning path.

Ends with the PR's acceptance experiment in miniature: tuning under a
replayed trace (diurnal and flash) picks a deployment that strictly beats
the steady-state pick when both are scored under load, bit-identically
across two independent runs.
"""

import numpy as np
import pytest

from repro.core import InferenceTuningServer
from repro.errors import ConfigurationError
from repro.hardware import Emulator, get_device
from repro.objectives import (
    TRAFFIC_METRICS,
    InferenceObjective,
    TrafficSLOObjective,
)
from repro.storage import TrialDatabase
from repro.traffic import (
    ReplayStats,
    SLOSpec,
    build_trace,
    merge_stats,
    record_replay,
    replay_fleet,
    replay_trace,
    traffic_stats,
)
from repro.workloads import get_workload

LIGHT = build_trace("poisson:rate=20,duration=20,seed=1")


def flat_latency(value):
    return lambda batch: value


class TestReplayEngine:
    def test_light_load_every_request_completes(self):
        stats = replay_trace(LIGHT, flat_latency(0.001), max_batch=4)
        assert stats.completed == stats.requests == len(LIGHT)
        assert stats.shed == 0 and not stats.diverged
        assert stats.deadline_misses == 0
        # Under light load nothing queues: latency ~= the service time.
        assert stats.p99_latency_s < 0.01
        assert stats.mean_queue_depth < 2.0

    def test_replay_is_deterministic(self):
        first = replay_trace(LIGHT, flat_latency(0.002), max_batch=4)
        second = replay_trace(LIGHT, flat_latency(0.002), max_batch=4)
        assert first.to_dict() == second.to_dict()

    def test_overload_sheds_gracefully(self):
        # 20 req/s against 1 s/call and no batching: hopeless backlog.
        stats = replay_trace(LIGHT, flat_latency(1.0), max_batch=1)
        assert stats.diverged
        assert stats.shed > 0
        assert stats.completed + stats.shed == stats.requests
        # Shed requests count as deadline misses even with no SLO set.
        assert stats.deadline_misses >= stats.shed
        assert stats.deadline_miss_rate > 0

    def test_batching_rescues_overload(self):
        # Same per-call latency, but batches of 64 amortise it away.
        latency = lambda batch: 0.08 + 0.001 * batch
        small = replay_trace(LIGHT, latency, max_batch=1)
        large = replay_trace(LIGHT, latency, max_batch=64)
        assert small.diverged and not large.diverged
        assert large.p99_latency_s < 1.0

    def test_deadline_misses_counted_against_slo(self):
        slo = SLOSpec(deadline_s=0.0005)
        stats = replay_trace(LIGHT, flat_latency(0.001), max_batch=1, slo=slo)
        assert stats.deadline_misses == stats.requests  # all exceed 0.5ms
        assert stats.deadline_miss_rate == 1.0

    def test_energy_includes_idle_draw(self):
        busy_only = replay_trace(
            LIGHT, flat_latency(0.001), max_batch=4, power_w=2.0
        )
        with_idle = replay_trace(
            LIGHT, flat_latency(0.001), max_batch=4,
            power_w=2.0, idle_power_w=1.0,
        )
        assert with_idle.energy_total_j > busy_only.energy_total_j
        expected_idle = with_idle.horizon_s - with_idle.busy_s
        assert with_idle.energy_total_j == pytest.approx(
            busy_only.energy_total_j + expected_idle, rel=1e-9
        )

    def test_no_cross_model_batching(self):
        trace = build_trace("multi:rate=100,models=2,duration=10,seed=4")
        stats = replay_trace(trace, flat_latency(0.001), max_batch=32)
        assert set(stats.per_model) == {"model-0", "model-1"}
        assert sum(stats.per_model.values()) == stats.requests
        # Two interleaved streams cap the achievable mean batch well
        # below the configured 32 (a batch never spans models).
        assert 1.0 <= stats.mean_batch < 32.0

    def test_latency_fn_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="positive"):
            replay_trace(LIGHT, flat_latency(0.0), max_batch=2)

    def test_per_model_latency_functions(self):
        trace = build_trace("multi:rate=50,models=2,duration=10,seed=4")
        stats = replay_trace(
            trace, [flat_latency(0.001), flat_latency(0.002)], max_batch=4
        )
        assert stats.completed == stats.requests
        with pytest.raises(ConfigurationError, match="latency"):
            replay_trace(trace, [flat_latency(0.001)], max_batch=4)


class TestFleetReplay:
    def test_per_device_stats_and_merge(self):
        trace = build_trace(
            "fleet:rate=60,devices=armv7+i7nuc,duration=20,seed=2"
        )
        results = replay_fleet(
            trace,
            latency_fn_for=lambda device: flat_latency(
                0.002 if device == "i7nuc" else 0.004
            ),
            max_batch=8,
        )
        assert set(results) == {"armv7", "i7nuc"}
        merged = merge_stats(results)
        assert merged["requests"] == float(len(trace))
        assert merged["devices"] == 2.0
        assert merged["worst_p99_latency_s"] >= max(
            stats.p99_latency_s for stats in results.values()
        )

    def test_single_device_trace_rejected(self):
        with pytest.raises(ConfigurationError, match="fleet"):
            replay_fleet(LIGHT, latency_fn_for=lambda d: flat_latency(0.001))


class TestSLOObjective:
    def test_metric_validation(self):
        with pytest.raises(ConfigurationError, match="metric"):
            TrafficSLOObjective("p42")

    def test_name_embeds_scenario_and_slo(self):
        objective = TrafficSLOObjective(
            "deadline",
            scenario="flash:duration=30,rate=30,seed=3",
            slo=SLOSpec(deadline_s=0.5),
        )
        assert "flash:duration=30,rate=30,seed=3" in objective.name
        assert "deadline=0.5" in objective.name
        # Distinct scenarios must never share a historical-cache key.
        other = TrafficSLOObjective(
            "deadline", scenario="poisson:duration=30,rate=30,seed=3",
            slo=SLOSpec(deadline_s=0.5),
        )
        assert objective.name != other.name

    @pytest.mark.parametrize("metric", TRAFFIC_METRICS)
    def test_diverged_always_loses_to_stable(self, metric):
        objective = TrafficSLOObjective(metric)
        stable = replay_trace(LIGHT, flat_latency(0.01), max_batch=16)
        diverged = replay_trace(LIGHT, flat_latency(1.0), max_batch=1)
        assert diverged.diverged and not stable.diverged
        assert objective.score_stats(diverged) > objective.score_stats(stable)

    def test_deadline_metric_ranks_by_miss_rate(self):
        objective = TrafficSLOObjective("deadline")

        def stats_with(miss_rate, p99):
            return ReplayStats(
                trace="t", requests=100, completed=100, shed=0,
                diverged=False, mean_latency_s=p99, p50_latency_s=p99,
                p95_latency_s=p99, p99_latency_s=p99, max_latency_s=p99,
                deadline_misses=int(miss_rate * 100),
                deadline_miss_rate=miss_rate, throughput_rps=10.0,
                energy_per_request_j=1.0, energy_total_j=100.0,
                busy_s=1.0, horizon_s=10.0, utilisation=0.1,
                mean_queue_depth=0.0, max_queue_depth=1, batches=100,
                mean_batch=1.0,
            )

        # Fewer misses wins even with a much worse p99 ...
        assert objective.score_stats(
            stats_with(0.01, p99=100.0)
        ) < objective.score_stats(stats_with(0.20, p99=0.001))
        # ... and p99 is the tie-breaker at equal miss rates.
        assert objective.score_stats(
            stats_with(0.05, p99=0.1)
        ) < objective.score_stats(stats_with(0.05, p99=0.2))


class TestPersistentCounters:
    def test_record_replay_accumulates(self):
        database = TrialDatabase()
        slo = SLOSpec(deadline_s=0.0005)
        stats = replay_trace(LIGHT, flat_latency(0.001), max_batch=1, slo=slo)
        record_replay(database, stats, slo)
        record_replay(database, stats, slo)
        counters = traffic_stats(database)
        assert counters["replays"] == 2.0
        assert counters["requests_replayed"] == 2.0 * stats.requests
        assert counters["slo_violations.deadline"] == pytest.approx(
            2.0 * stats.deadline_misses
        )
        # Nothing shed, nothing diverged, no storm: keys stay absent.
        assert "requests_shed" not in counters
        assert "replays_diverged" not in counters


ARCH_FLOPS = 200.0
ARCH_PARAMS = 12_000


def tune_under(traffic, metric="deadline", slo=None, seed=3):
    server = InferenceTuningServer(
        device="armv7",
        objective=TrafficSLOObjective(
            metric,
            scenario=traffic if isinstance(traffic, str) else "",
            slo=slo,
        ),
        emulator=Emulator(),
        database=TrialDatabase(),
        seed=seed,
        traffic=traffic,
        slo=slo,
    )
    space = get_workload("IC").inference_space("armv7")
    return server, server.tune("arch", ARCH_FLOPS, ARCH_PARAMS, space)


class TestLoadAwareTuning:
    def test_under_load_records_replays(self):
        slo = SLOSpec(deadline_s=0.5)
        server, (recommendation, records) = tune_under(
            "flash:rate=30,mult=8,duration=30,seed=3", slo=slo
        )
        assert server.under_load
        assert records and all(r.replay is not None for r in records)
        assert not recommendation.cache_hit
        # Derived measurements are per-request: batch_size=1 so the p99
        # *is* the per-sample latency the combined objective consumes.
        assert recommendation.measurement.batch_size == 1
        counters = traffic_stats(server.database)
        assert counters["replays"] == len(records)

    def test_cache_hit_reproduces_fresh_measurement(self):
        slo = SLOSpec(deadline_s=0.5)
        server, (fresh, _) = tune_under(
            "flash:rate=30,mult=8,duration=30,seed=3", slo=slo
        )
        cached = server.cached("arch")
        assert cached is not None and cached.cache_hit
        assert cached.configuration == fresh.configuration
        assert (
            cached.measurement.latency_per_sample_s
            == fresh.measurement.latency_per_sample_s
        )
        assert (
            cached.measurement.energy_per_sample_j
            == fresh.measurement.energy_per_sample_j
        )

    def test_scenarios_do_not_share_cache_entries(self):
        database = TrialDatabase()
        space = get_workload("IC").inference_space("armv7")
        for scenario in (
            "flash:rate=30,mult=8,duration=30,seed=3",
            "poisson:rate=30,duration=30,seed=3",
        ):
            server = InferenceTuningServer(
                device="armv7",
                objective=TrafficSLOObjective("p99", scenario=scenario),
                emulator=Emulator(),
                database=database,
                seed=3,
                traffic=scenario,
            )
            recommendation, records = server.tune(
                "arch", ARCH_FLOPS, ARCH_PARAMS, space
            )
            assert not recommendation.cache_hit  # second scenario no hit
            assert records

    @pytest.mark.parametrize(
        "scenario",
        [
            "diurnal:rate=35,peak=6,duration=40,seed=3",
            "flash:rate=30,mult=10,duration=40,seed=3",
        ],
    )
    def test_slo_tuned_beats_steady_tuned_under_load(self, scenario):
        """The acceptance experiment in miniature: score both tuning
        styles' picks under the *same* replayed load; the load-aware pick
        must win strictly, and bit-identically across two runs."""
        slo = SLOSpec(deadline_s=0.5)
        objective = TrafficSLOObjective("deadline", scenario=scenario,
                                        slo=slo)
        space = get_workload("IC").inference_space("armv7")
        emulator = Emulator()
        spec = get_device("armv7")
        trace = build_trace(scenario)

        def deployment_score(configuration):
            cores = int(configuration.get("cores", 1))
            frequency = configuration.get("frequency_ghz")

            def latency_fn(size):
                return emulator.measure_inference(
                    forward_flops_per_sample=ARCH_FLOPS,
                    parameter_count=ARCH_PARAMS,
                    batch_size=size,
                    device=spec,
                    cores=cores,
                    frequency_ghz=frequency,
                ).batch_latency_s

            stats = replay_trace(
                trace,
                latency_fn,
                max_batch=int(configuration["inference_batch_size"]),
                slo=slo,
                idle_power_w=spec.idle_power_w,
            )
            return objective.score_stats(stats)

        def run_once():
            steady = InferenceTuningServer(
                device="armv7", objective=InferenceObjective("energy"),
                emulator=emulator, database=TrialDatabase(), seed=3,
            ).tune("arch", ARCH_FLOPS, ARCH_PARAMS, space)[0]
            loaded = InferenceTuningServer(
                device="armv7", objective=objective, emulator=emulator,
                database=TrialDatabase(), seed=3, traffic=scenario, slo=slo,
            ).tune("arch", ARCH_FLOPS, ARCH_PARAMS, space)[0]
            return (
                steady.configuration,
                loaded.configuration,
                deployment_score(steady.configuration),
                deployment_score(loaded.configuration),
            )

        first = run_once()
        second = run_once()
        assert first == second  # bit-identical across two runs
        steady_config, loaded_config, steady_score, loaded_score = first
        assert loaded_config != steady_config
        assert loaded_score < steady_score  # strictly better under load
