"""Additional trainer behaviours: LR schedules in the loop, detection
evaluation details, and Parzen estimator internals."""

import numpy as np
import pytest

from repro.datasets import make_cifar10
from repro.nn import StepDecayLR, evaluate_accuracy, train_model
from repro.nn.models import get_model_family
from repro.search.tpe import MIN_BANDWIDTH, ParzenEstimator


class TestSchedulesInTraining:
    def test_schedule_changes_trajectory(self):
        dataset = make_cifar10(samples=200, seed=1)
        train, test = dataset.split(0.2, rng=0)
        family = get_model_family("resnet")

        def run(schedule):
            model = family.instantiate(dataset.sample_shape,
                                       dataset.num_classes, seed=3)
            return train_model(
                model, family.make_loss(dataset.num_classes), train, test,
                epochs=6, batch_size=16, lr=0.05, schedule=schedule, seed=5,
            )

        constant = run(None)
        decayed = run(StepDecayLR(step_size=2, gamma=0.2))
        # Different schedules produce genuinely different optimisation.
        assert constant.losses != decayed.losses


class TestEvaluateAccuracy:
    def test_matches_manual_argmax(self):
        dataset = make_cifar10(samples=120, seed=2)
        family = get_model_family("resnet")
        model = family.instantiate(dataset.sample_shape,
                                   dataset.num_classes, seed=4)
        accuracy = evaluate_accuracy(model, dataset, batch_size=32)
        model.eval()
        outputs = model.forward(dataset.features)
        expected = (outputs.argmax(axis=1) == dataset.targets).mean()
        model.train()
        assert accuracy == pytest.approx(expected)

    def test_restores_training_mode(self):
        dataset = make_cifar10(samples=40, seed=2)
        family = get_model_family("resnet")
        model = family.instantiate(dataset.sample_shape,
                                   dataset.num_classes, seed=4)
        model.train()
        evaluate_accuracy(model, dataset)
        assert model.training is True


class TestParzenEstimator:
    def test_bandwidth_floor(self):
        points = np.full((10, 2), 0.5)  # zero spread
        estimator = ParzenEstimator(points)
        assert (estimator.bandwidths >= MIN_BANDWIDTH).all()

    def test_samples_stay_in_unit_cube(self):
        rng = np.random.default_rng(0)
        estimator = ParzenEstimator(rng.uniform(size=(20, 3)))
        for _ in range(200):
            draw = estimator.sample(rng)
            assert ((draw >= 0.0) & (draw <= 1.0)).all()

    def test_density_higher_near_points(self):
        points = np.array([[0.2, 0.2], [0.25, 0.18], [0.22, 0.22]])
        estimator = ParzenEstimator(points)
        near = estimator.log_density(np.array([0.22, 0.2]))
        far = estimator.log_density(np.array([0.9, 0.9]))
        assert near > far

    def test_rejects_empty(self):
        from repro.errors import SearchSpaceError

        with pytest.raises(SearchSpaceError):
            ParzenEstimator(np.zeros((0, 2)))
