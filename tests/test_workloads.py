"""Tests for the workload registry (Table 1) and its search spaces."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    INFERENCE_BATCH_RANGE,
    TRAIN_BATCH_RANGE,
    TRAIN_GPU_RANGE,
    WORKLOADS,
    get_workload,
    workload_ids,
)
from repro.workloads.workload import (
    BATCH_DOWNSCALE,
    LR_REFERENCE_BATCH,
    MIN_REAL_BATCH,
)


class TestRegistry:
    def test_four_workloads(self):
        assert workload_ids() == ["IC", "SR", "NLP", "OD"]

    def test_case_insensitive_lookup(self):
        assert get_workload("ic").workload_id == "IC"

    def test_unknown_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("ASR")

    def test_table1_metadata(self):
        """Table 1 rows reported by the paper, preserved verbatim."""
        ic = get_workload("IC").table1
        assert (ic.datasize, ic.train_files, ic.test_files) == (
            "163 MB", 50_000, 10_000
        )
        od = get_workload("OD").table1
        assert (od.train_files, od.test_files) == (164_000, 41_000)

    def test_model_dataset_pairing(self):
        pairs = {
            "IC": ("resnet", "cifar10"),
            "SR": ("m5", "speechcommands"),
            "NLP": ("textrnn", "agnews"),
            "OD": ("yolo", "coco"),
        }
        for wid, (model, dataset) in pairs.items():
            workload = get_workload(wid)
            assert workload.model_name == model
            assert workload.dataset_name == dataset

    def test_task_follows_family(self):
        assert get_workload("OD").task == "detection"
        assert get_workload("IC").task == "classification"


class TestSpaces:
    def test_training_space_paper_ranges(self):
        """§5.1: batch 32-512, GPUs 1-8, plus the model hyperparameter."""
        space = get_workload("IC").training_space()
        batch = space["train_batch_size"]
        assert (batch.low, batch.high) == TRAIN_BATCH_RANGE
        gpus = space["gpus"]
        assert (gpus.low, gpus.high) == TRAIN_GPU_RANGE
        assert "num_layers" in space

    def test_training_space_without_system(self):
        space = get_workload("IC").training_space(include_system=False)
        assert "gpus" not in space

    def test_inference_space_tracks_device(self):
        space = get_workload("IC").inference_space("i7nuc")
        batch = space["inference_batch_size"]
        assert (batch.low, batch.high) == INFERENCE_BATCH_RANGE
        assert space["cores"].high == 4
        assert len(space["frequency_ghz"].choices) == 3

    def test_model_parameter_per_workload(self):
        names = {
            "IC": "num_layers",
            "SR": "embedding_dim",
            "NLP": "stride",
            "OD": "dropout",
        }
        for wid, parameter in names.items():
            assert parameter in get_workload(wid).training_space()


class TestLoading:
    def test_load_splits(self):
        train, test = get_workload("IC").load(seed=1, samples=100)
        assert len(train) + len(test) == 100
        assert len(test) == 20  # paper: 20 % held out

    def test_load_deterministic(self):
        a_train, _ = get_workload("SR").load(seed=9, samples=60)
        b_train, _ = get_workload("SR").load(seed=9, samples=60)
        assert (a_train.features == b_train.features).all()


class TestEffectiveTraining:
    def test_downscale_rule(self):
        workload = get_workload("IC")
        real, _ = workload.effective_training(512)
        assert real == 512 // BATCH_DOWNSCALE
        real_small, _ = workload.effective_training(8)
        assert real_small == MIN_REAL_BATCH

    def test_lr_sqrt_scaling(self):
        workload = get_workload("IC")
        _, lr_ref = workload.effective_training(
            LR_REFERENCE_BATCH * BATCH_DOWNSCALE
        )
        assert lr_ref == pytest.approx(workload.learning_rate)
        _, lr_big = workload.effective_training(
            4 * LR_REFERENCE_BATCH * BATCH_DOWNSCALE
        )
        assert lr_big == pytest.approx(2 * workload.learning_rate)

    def test_invalid_batch(self):
        with pytest.raises(WorkloadError):
            get_workload("IC").effective_training(0)

    def test_model_seed_stable_and_distinct(self):
        workload = get_workload("IC")
        assert workload.model_seed(1, 5) == workload.model_seed(1, 5)
        assert workload.model_seed(1, 5) != workload.model_seed(1, 6)
        assert workload.model_seed(1, 5) != workload.model_seed(2, 5)
